open Mpas_mesh
open Mpas_par

let pfor pool lo hi f =
  match pool with
  | None ->
      for i = lo to hi - 1 do
        f i
      done
  | Some p -> Pool.parallel_for p ~lo ~hi f

(* Iterate the full range [0, n) or, when [on] is given, exactly the
   listed indices — the rank-local compute sets of the distributed
   driver. *)
let iter pool ?on n f =
  match on with
  | None -> pfor pool 0 n f
  | Some idx -> pfor pool 0 (Array.length idx) (fun k -> f idx.(k))

(* Contiguous-range runner of the CSR fast paths: the loop body works on
   [lo, hi) directly so the flat tables are walked in order. *)
let range pool lo hi body =
  match pool with
  | None -> if hi > lo then body ~lo ~hi
  | Some p -> Pool.parallel_for_chunks p ~lo ~hi body

(* Cheap point-wise loops (the X3/X4 pattern instances) are dominated by
   scheduling overhead at the default granularity; hand out two big
   chunks per domain instead. *)
let iter_pointwise pool ?on n f =
  match (pool, on) with
  | Some p, None ->
      Pool.parallel_for ~chunk:(Int.max 1 (n / (2 * Pool.size p))) p ~lo:0
        ~hi:n f
  | _ -> iter pool ?on n f

(* The CSR kernels index caller-provided fields with [Array.unsafe_get];
   the mesh side is validated once by [Mesh.csr], the field side here. *)
let check_len kernel name a n =
  if Array.length a < n then
    invalid_arg
      (Printf.sprintf "Operators.%s: %s has %d elements, need %d" kernel name
         (Array.length a) n)

(* --- ragged-layout gather forms ----------------------------------------- *)

(* The pre-CSR kernels, kept as the reference implementations: the
   [?on] compute sets of the distributed driver run them (their index
   sets are not contiguous), the equivalence tests pin the CSR fast
   paths to them bit-for-bit, and the [layout] benchmark group measures
   the flattening win against them. *)
module Ragged = struct
  let kinetic_energy ?pool ?on (m : Mesh.t) ~u ~out =
    iter pool ?on m.n_cells (fun c ->
        let acc = ref 0. in
        for j = 0 to m.n_edges_on_cell.(c) - 1 do
          let e = m.edges_on_cell.(c).(j) in
          acc :=
            !acc +. (0.25 *. m.dc_edge.(e) *. m.dv_edge.(e) *. u.(e) *. u.(e))
        done;
        out.(c) <- !acc /. m.area_cell.(c))

  let divergence ?pool ?on (m : Mesh.t) ~u ~out =
    iter pool ?on m.n_cells (fun c ->
        let acc = ref 0. in
        for j = 0 to m.n_edges_on_cell.(c) - 1 do
          let e = m.edges_on_cell.(c).(j) in
          acc := !acc +. (m.edge_sign_on_cell.(c).(j) *. u.(e) *. m.dv_edge.(e))
        done;
        out.(c) <- !acc /. m.area_cell.(c))

  let vorticity ?pool ?on (m : Mesh.t) ~u ~out =
    iter pool ?on m.n_vertices (fun v ->
        let acc = ref 0. in
        for k = 0 to 2 do
          let e = m.edges_on_vertex.(v).(k) in
          acc :=
            !acc +. (m.edge_sign_on_vertex.(v).(k) *. u.(e) *. m.dc_edge.(e))
        done;
        out.(v) <- !acc /. m.area_triangle.(v))

  let h_vertex ?pool ?on (m : Mesh.t) ~h ~out =
    iter pool ?on m.n_vertices (fun v ->
        let acc = ref 0. in
        for k = 0 to 2 do
          acc :=
            !acc
            +. (m.kite_areas_on_vertex.(v).(k) *. h.(m.cells_on_vertex.(v).(k)))
        done;
        out.(v) <- !acc /. m.area_triangle.(v))

  let pv_cell ?pool ?on (m : Mesh.t) ~pv_vertex ~out =
    iter pool ?on m.n_cells (fun c ->
        let n = m.n_edges_on_cell.(c) in
        let acc = ref 0. in
        for j = 0 to n - 1 do
          let v = m.vertices_on_cell.(c).(j) in
          let k = Mesh_index.local_index m.cells_on_vertex.(v) c in
          acc := !acc +. (m.kite_areas_on_vertex.(v).(k) *. pv_vertex.(v))
        done;
        out.(c) <- !acc /. m.area_cell.(c))

  let tangential_velocity ?pool ?on (m : Mesh.t) ~u ~out =
    iter pool ?on m.n_edges (fun e ->
        let acc = ref 0. in
        let eoe = m.edges_on_edge.(e) and w = m.weights_on_edge.(e) in
        for i = 0 to m.n_edges_on_edge.(e) - 1 do
          acc := !acc +. (w.(i) *. u.(eoe.(i)))
        done;
        out.(e) <- !acc)

  let tend_h ?pool ?on (m : Mesh.t) ~h_edge ~u ~out =
    iter pool ?on m.n_cells (fun c ->
        let acc = ref 0. in
        for j = 0 to m.n_edges_on_cell.(c) - 1 do
          let e = m.edges_on_cell.(c).(j) in
          acc :=
            !acc
            +. (m.edge_sign_on_cell.(c).(j) *. h_edge.(e) *. u.(e)
                *. m.dv_edge.(e))
        done;
        out.(c) <- -.(!acc) /. m.area_cell.(c))

  let tend_u ?pool ?on ?(pv_average = Config.Symmetric) (m : Mesh.t) ~gravity
      ~h ~b ~ke ~h_edge ~u ~pv_edge ~out =
    iter pool ?on m.n_edges (fun e ->
        (* Perp flux; the symmetric potential-vorticity average makes the
           Coriolis force exactly energy-neutral. *)
        let q_flux = ref 0. in
        let eoe = m.edges_on_edge.(e) and w = m.weights_on_edge.(e) in
        for i = 0 to m.n_edges_on_edge.(e) - 1 do
          let e' = eoe.(i) in
          let q =
            match pv_average with
            | Config.Symmetric -> 0.5 *. (pv_edge.(e) +. pv_edge.(e'))
            | Config.Edge_only -> pv_edge.(e)
          in
          q_flux := !q_flux +. (w.(i) *. u.(e') *. h_edge.(e') *. q)
        done;
        let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
        let energy c = (gravity *. (h.(c) +. b.(c))) +. ke.(c) in
        let grad = (energy c2 -. energy c1) /. m.dc_edge.(e) in
        out.(e) <- !q_flux -. grad)

  let tracer_edge ?pool ?on (m : Mesh.t) ~scheme ~tracer ~u ~out =
    match (scheme : Config.tracer_adv) with
    | Config.Centered ->
        iter pool ?on m.n_edges (fun e ->
            let c1 = m.cells_on_edge.(e).(0)
            and c2 = m.cells_on_edge.(e).(1) in
            out.(e) <- 0.5 *. (tracer.(c1) +. tracer.(c2)))
    | Config.Upwind ->
        iter pool ?on m.n_edges (fun e ->
            let c1 = m.cells_on_edge.(e).(0)
            and c2 = m.cells_on_edge.(e).(1) in
            out.(e) <- (if u.(e) >= 0. then tracer.(c1) else tracer.(c2)))

  let tend_tracer ?pool ?on (m : Mesh.t) ~h_edge ~u ~tracer_edge ~out =
    iter pool ?on m.n_cells (fun c ->
        let acc = ref 0. in
        for j = 0 to m.n_edges_on_cell.(c) - 1 do
          let e = m.edges_on_cell.(c).(j) in
          acc :=
            !acc
            +. (m.edge_sign_on_cell.(c).(j) *. h_edge.(e) *. tracer_edge.(e)
                *. u.(e) *. m.dv_edge.(e))
        done;
        out.(c) <- -.(!acc) /. m.area_cell.(c))

  let velocity_laplacian ?pool ?on (m : Mesh.t) ~divergence ~vorticity ~out =
    iter pool ?on m.n_edges (fun e ->
        let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
        let v1 = m.vertices_on_edge.(e).(0)
        and v2 = m.vertices_on_edge.(e).(1) in
        out.(e) <-
          ((divergence.(c2) -. divergence.(c1)) /. m.dc_edge.(e))
          -. ((vorticity.(v2) -. vorticity.(v1)) /. m.dv_edge.(e)))
end

(* --- compute_solve_diagnostics ---------------------------------------- *)

let d2fdx2 ?pool ?on (m : Mesh.t) ~h ~out =
  iter pool ?on m.n_cells (fun c ->
      let acc = ref 0. in
      for j = 0 to m.n_edges_on_cell.(c) - 1 do
        let e = m.edges_on_cell.(c).(j) in
        let c' = m.cells_on_cell.(c).(j) in
        acc := !acc +. (m.dv_edge.(e) *. (h.(c') -. h.(c)) /. m.dc_edge.(e))
      done;
      out.(c) <- !acc /. m.area_cell.(c))

let d2fdx2_scatter (m : Mesh.t) ~h ~out =
  Array.fill out 0 m.n_cells 0.;
  for e = 0 to m.n_edges - 1 do
    let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
    let flux = m.dv_edge.(e) *. (h.(c2) -. h.(c1)) /. m.dc_edge.(e) in
    out.(c1) <- out.(c1) +. (flux /. m.area_cell.(c1));
    out.(c2) <- out.(c2) -. (flux /. m.area_cell.(c2))
  done

let h_edge ?pool ?on (m : Mesh.t) ~order ~h ~d2fdx2_cell ~out =
  match (order : Config.h_adv_order) with
  | Second ->
      iter pool ?on m.n_edges (fun e ->
          let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
          out.(e) <- 0.5 *. (h.(c1) +. h.(c2)))
  | Fourth ->
      iter pool ?on m.n_edges (fun e ->
          let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
          let dc = m.dc_edge.(e) in
          out.(e) <-
            (0.5 *. (h.(c1) +. h.(c2)))
            -. (dc *. dc /. 24. *. (d2fdx2_cell.(c1) +. d2fdx2_cell.(c2))))

let kinetic_energy ?pool ?on (m : Mesh.t) ~u ~out =
  match on with
  | Some _ -> Ragged.kinetic_energy ?pool ?on m ~u ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "kinetic_energy" "u" u m.n_edges;
      check_len "kinetic_energy" "out" out m.n_cells;
      let offsets = csr.cell_offsets and edges = csr.cell_edges in
      let dc = m.dc_edge and dv = m.dv_edge and area = m.area_cell in
      range pool 0 m.n_cells (fun ~lo ~hi ->
          for c = lo to hi - 1 do
            let j0 = Array.unsafe_get offsets c
            and j1 = Array.unsafe_get offsets (c + 1) in
            let acc = ref 0. in
            for j = j0 to j1 - 1 do
              let e = Array.unsafe_get edges j in
              let ue = Array.unsafe_get u e in
              acc :=
                !acc
                +. (0.25 *. Array.unsafe_get dc e *. Array.unsafe_get dv e
                    *. ue *. ue)
            done;
            Array.unsafe_set out c (!acc /. Array.unsafe_get area c)
          done)

let kinetic_energy_scatter (m : Mesh.t) ~u ~out =
  Array.fill out 0 m.n_cells 0.;
  for e = 0 to m.n_edges - 1 do
    let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
    let contrib = 0.25 *. m.dc_edge.(e) *. m.dv_edge.(e) *. u.(e) *. u.(e) in
    out.(c1) <- out.(c1) +. (contrib /. m.area_cell.(c1));
    out.(c2) <- out.(c2) +. (contrib /. m.area_cell.(c2))
  done

let divergence ?pool ?on (m : Mesh.t) ~u ~out =
  match on with
  | Some _ -> Ragged.divergence ?pool ?on m ~u ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "divergence" "u" u m.n_edges;
      check_len "divergence" "out" out m.n_cells;
      let offsets = csr.cell_offsets
      and edges = csr.cell_edges
      and signs = csr.cell_edge_signs in
      let dv = m.dv_edge and area = m.area_cell in
      range pool 0 m.n_cells (fun ~lo ~hi ->
          for c = lo to hi - 1 do
            let j0 = Array.unsafe_get offsets c
            and j1 = Array.unsafe_get offsets (c + 1) in
            let acc = ref 0. in
            for j = j0 to j1 - 1 do
              let e = Array.unsafe_get edges j in
              acc :=
                !acc
                +. (Array.unsafe_get signs j *. Array.unsafe_get u e
                    *. Array.unsafe_get dv e)
            done;
            Array.unsafe_set out c (!acc /. Array.unsafe_get area c)
          done)

let divergence_scatter (m : Mesh.t) ~u ~out =
  Array.fill out 0 m.n_cells 0.;
  for e = 0 to m.n_edges - 1 do
    let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
    let flux = u.(e) *. m.dv_edge.(e) in
    out.(c1) <- out.(c1) +. (flux /. m.area_cell.(c1));
    out.(c2) <- out.(c2) -. (flux /. m.area_cell.(c2))
  done

let vorticity ?pool ?on (m : Mesh.t) ~u ~out =
  match on with
  | Some _ -> Ragged.vorticity ?pool ?on m ~u ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "vorticity" "u" u m.n_edges;
      check_len "vorticity" "out" out m.n_vertices;
      let ve = csr.vertex_edges and signs = csr.vertex_edge_signs in
      let dc = m.dc_edge and area = m.area_triangle in
      range pool 0 m.n_vertices (fun ~lo ~hi ->
          for v = lo to hi - 1 do
            let b = 3 * v in
            let acc = ref 0. in
            for k = b to b + 2 do
              let e = Array.unsafe_get ve k in
              acc :=
                !acc
                +. (Array.unsafe_get signs k *. Array.unsafe_get u e
                    *. Array.unsafe_get dc e)
            done;
            Array.unsafe_set out v (!acc /. Array.unsafe_get area v)
          done)

let vorticity_scatter (m : Mesh.t) ~u ~out =
  Array.fill out 0 m.n_vertices 0.;
  for e = 0 to m.n_edges - 1 do
    (* The edge's circulation contribution is +u dc along the normal
       direction; find its sign for each adjacent vertex. *)
    let circ = u.(e) *. m.dc_edge.(e) in
    Array.iter
      (fun v ->
        let k = Mesh_index.local_index m.edges_on_vertex.(v) e in
        out.(v) <-
          out.(v)
          +. (m.edge_sign_on_vertex.(v).(k) *. circ /. m.area_triangle.(v)))
      m.vertices_on_edge.(e)
  done

let h_vertex ?pool ?on (m : Mesh.t) ~h ~out =
  match on with
  | Some _ -> Ragged.h_vertex ?pool ?on m ~h ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "h_vertex" "h" h m.n_cells;
      check_len "h_vertex" "out" out m.n_vertices;
      let vc = csr.vertex_cells and kites = csr.vertex_kite_areas in
      let area = m.area_triangle in
      range pool 0 m.n_vertices (fun ~lo ~hi ->
          for v = lo to hi - 1 do
            let b = 3 * v in
            let acc = ref 0. in
            for k = b to b + 2 do
              acc :=
                !acc
                +. (Array.unsafe_get kites k
                    *. Array.unsafe_get h (Array.unsafe_get vc k))
            done;
            Array.unsafe_set out v (!acc /. Array.unsafe_get area v)
          done)

let pv_vertex ?pool ?on (m : Mesh.t) ~vorticity ~h_vertex ~out =
  iter pool ?on m.n_vertices (fun v ->
      out.(v) <- (m.f_vertex.(v) +. vorticity.(v)) /. h_vertex.(v))

let pv_cell ?pool ?on (m : Mesh.t) ~pv_vertex ~out =
  match on with
  | Some _ -> Ragged.pv_cell ?pool ?on m ~pv_vertex ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "pv_cell" "pv_vertex" pv_vertex m.n_vertices;
      check_len "pv_cell" "out" out m.n_cells;
      let offsets = csr.cell_offsets
      and verts = csr.cell_vertices
      and vc = csr.vertex_cells
      and kites = csr.vertex_kite_areas in
      let area = m.area_cell in
      range pool 0 m.n_cells (fun ~lo ~hi ->
          for c = lo to hi - 1 do
            let j0 = Array.unsafe_get offsets c
            and j1 = Array.unsafe_get offsets (c + 1) in
            let acc = ref 0. in
            for j = j0 to j1 - 1 do
              let v = Array.unsafe_get verts j in
              let b = 3 * v in
              (* The reverse link is validated by [Mesh.csr], so the
                 third slot is implied when the first two miss. *)
              let k =
                if Array.unsafe_get vc b = c then b
                else if Array.unsafe_get vc (b + 1) = c then b + 1
                else b + 2
              in
              acc :=
                !acc
                +. (Array.unsafe_get kites k *. Array.unsafe_get pv_vertex v)
            done;
            Array.unsafe_set out c (!acc /. Array.unsafe_get area c)
          done)

let pv_cell_scatter (m : Mesh.t) ~pv_vertex ~out =
  Array.fill out 0 m.n_cells 0.;
  for v = 0 to m.n_vertices - 1 do
    for k = 0 to 2 do
      let c = m.cells_on_vertex.(v).(k) in
      out.(c) <-
        out.(c)
        +. (m.kite_areas_on_vertex.(v).(k) *. pv_vertex.(v) /. m.area_cell.(c))
    done
  done

let tangential_velocity ?pool ?on (m : Mesh.t) ~u ~out =
  match on with
  | Some _ -> Ragged.tangential_velocity ?pool ?on m ~u ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "tangential_velocity" "u" u m.n_edges;
      check_len "tangential_velocity" "out" out m.n_edges;
      let offsets = csr.eoe_offsets
      and eoe = csr.eoe_edges
      and w = csr.eoe_weights in
      range pool 0 m.n_edges (fun ~lo ~hi ->
          for e = lo to hi - 1 do
            let i0 = Array.unsafe_get offsets e
            and i1 = Array.unsafe_get offsets (e + 1) in
            let acc = ref 0. in
            for i = i0 to i1 - 1 do
              acc :=
                !acc
                +. (Array.unsafe_get w i
                    *. Array.unsafe_get u (Array.unsafe_get eoe i))
            done;
            Array.unsafe_set out e !acc
          done)

let grad_pv ?pool ?on (m : Mesh.t) ~pv_cell ~pv_vertex ~out_n ~out_t =
  iter pool ?on m.n_edges (fun e ->
      let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
      let v1 = m.vertices_on_edge.(e).(0) and v2 = m.vertices_on_edge.(e).(1) in
      out_n.(e) <- (pv_cell.(c2) -. pv_cell.(c1)) /. m.dc_edge.(e);
      out_t.(e) <- (pv_vertex.(v2) -. pv_vertex.(v1)) /. m.dv_edge.(e))

let pv_edge ?pool ?on (m : Mesh.t) ~apvm_factor ~dt ~pv_vertex ~grad_pv_n
    ~grad_pv_t ~u ~v_tangential ~out =
  iter pool ?on m.n_edges (fun e ->
      let v1 = m.vertices_on_edge.(e).(0) and v2 = m.vertices_on_edge.(e).(1) in
      let base = 0.5 *. (pv_vertex.(v1) +. pv_vertex.(v2)) in
      let advect = (u.(e) *. grad_pv_n.(e)) +. (v_tangential.(e) *. grad_pv_t.(e)) in
      out.(e) <- base -. (apvm_factor *. dt *. advect))

(* --- compute_tend ------------------------------------------------------ *)

let tend_h ?pool ?on (m : Mesh.t) ~h_edge ~u ~out =
  match on with
  | Some _ -> Ragged.tend_h ?pool ?on m ~h_edge ~u ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "tend_h" "h_edge" h_edge m.n_edges;
      check_len "tend_h" "u" u m.n_edges;
      check_len "tend_h" "out" out m.n_cells;
      let offsets = csr.cell_offsets
      and edges = csr.cell_edges
      and signs = csr.cell_edge_signs in
      let dv = m.dv_edge and area = m.area_cell in
      range pool 0 m.n_cells (fun ~lo ~hi ->
          for c = lo to hi - 1 do
            let j0 = Array.unsafe_get offsets c
            and j1 = Array.unsafe_get offsets (c + 1) in
            let acc = ref 0. in
            for j = j0 to j1 - 1 do
              let e = Array.unsafe_get edges j in
              acc :=
                !acc
                +. (Array.unsafe_get signs j *. Array.unsafe_get h_edge e
                    *. Array.unsafe_get u e *. Array.unsafe_get dv e)
            done;
            Array.unsafe_set out c (-.(!acc) /. Array.unsafe_get area c)
          done)

let tend_h_scatter (m : Mesh.t) ~h_edge ~u ~out =
  Array.fill out 0 m.n_cells 0.;
  for e = 0 to m.n_edges - 1 do
    let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
    let flux = h_edge.(e) *. u.(e) *. m.dv_edge.(e) in
    out.(c1) <- out.(c1) -. (flux /. m.area_cell.(c1));
    out.(c2) <- out.(c2) +. (flux /. m.area_cell.(c2))
  done

let tend_u ?pool ?on ?(pv_average = Config.Symmetric) (m : Mesh.t) ~gravity ~h
    ~b ~ke ~h_edge ~u ~pv_edge ~out =
  match on with
  | Some _ ->
      Ragged.tend_u ?pool ?on ~pv_average m ~gravity ~h ~b ~ke ~h_edge ~u
        ~pv_edge ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "tend_u" "h" h m.n_cells;
      check_len "tend_u" "b" b m.n_cells;
      check_len "tend_u" "ke" ke m.n_cells;
      check_len "tend_u" "h_edge" h_edge m.n_edges;
      check_len "tend_u" "u" u m.n_edges;
      check_len "tend_u" "pv_edge" pv_edge m.n_edges;
      check_len "tend_u" "out" out m.n_edges;
      let offsets = csr.eoe_offsets
      and eoe = csr.eoe_edges
      and w = csr.eoe_weights
      and ec = csr.edge_cells in
      let dc = m.dc_edge in
      range pool 0 m.n_edges (fun ~lo ~hi ->
          for e = lo to hi - 1 do
            (* Perp flux; the symmetric potential-vorticity average makes
               the Coriolis force exactly energy-neutral. *)
            let i0 = Array.unsafe_get offsets e
            and i1 = Array.unsafe_get offsets (e + 1) in
            let q_flux = ref 0. in
            (match pv_average with
            | Config.Symmetric ->
                let pe = Array.unsafe_get pv_edge e in
                for i = i0 to i1 - 1 do
                  let e' = Array.unsafe_get eoe i in
                  let q = 0.5 *. (pe +. Array.unsafe_get pv_edge e') in
                  q_flux :=
                    !q_flux
                    +. (Array.unsafe_get w i *. Array.unsafe_get u e'
                        *. Array.unsafe_get h_edge e' *. q)
                done
            | Config.Edge_only ->
                let q = Array.unsafe_get pv_edge e in
                for i = i0 to i1 - 1 do
                  let e' = Array.unsafe_get eoe i in
                  q_flux :=
                    !q_flux
                    +. (Array.unsafe_get w i *. Array.unsafe_get u e'
                        *. Array.unsafe_get h_edge e' *. q)
                done);
            let c1 = Array.unsafe_get ec (2 * e)
            and c2 = Array.unsafe_get ec ((2 * e) + 1) in
            let energy c =
              (gravity *. (Array.unsafe_get h c +. Array.unsafe_get b c))
              +. Array.unsafe_get ke c
            in
            let grad = (energy c2 -. energy c1) /. Array.unsafe_get dc e in
            Array.unsafe_set out e (!q_flux -. grad)
          done)

let dissipation ?pool ?on (m : Mesh.t) ~visc2 ~divergence ~vorticity ~tend_u =
  if visc2 <> 0. then
    iter pool ?on m.n_edges (fun e ->
        let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
        let v1 = m.vertices_on_edge.(e).(0)
        and v2 = m.vertices_on_edge.(e).(1) in
        let lap =
          ((divergence.(c2) -. divergence.(c1)) /. m.dc_edge.(e))
          -. ((vorticity.(v2) -. vorticity.(v1)) /. m.dv_edge.(e))
        in
        tend_u.(e) <- tend_u.(e) +. (visc2 *. lap))

let local_forcing ?pool ?on (m : Mesh.t) ~drag ~u ~tend_u =
  if drag <> 0. then
    iter pool ?on m.n_edges (fun e -> tend_u.(e) <- tend_u.(e) -. (drag *. u.(e)))

(* --- remaining kernels -------------------------------------------------- *)

let enforce_boundary_edge ?pool ?on (m : Mesh.t) ~tend_u =
  iter pool ?on m.n_edges (fun e ->
      if m.boundary_edge.(e) then tend_u.(e) <- 0.)

let next_substep_state ?pool ?on_cells ?on_edges (m : Mesh.t) ~coef
    ~(base : Fields.state) ~(tend : Fields.tendencies)
    ~(provis : Fields.state) =
  iter_pointwise pool ?on:on_cells m.n_cells (fun c ->
      provis.h.(c) <- base.h.(c) +. (coef *. tend.tend_h.(c)));
  iter_pointwise pool ?on:on_edges m.n_edges (fun e ->
      provis.u.(e) <- base.u.(e) +. (coef *. tend.tend_u.(e)))

let accumulate ?pool ?on_cells ?on_edges (m : Mesh.t) ~coef
    ~(tend : Fields.tendencies) ~(accum : Fields.state) =
  iter_pointwise pool ?on:on_cells m.n_cells (fun c ->
      accum.h.(c) <- accum.h.(c) +. (coef *. tend.tend_h.(c)));
  iter_pointwise pool ?on:on_edges m.n_edges (fun e ->
      accum.u.(e) <- accum.u.(e) +. (coef *. tend.tend_u.(e)))

(* --- extensions beyond the paper's Table I ------------------------------ *)

let tracer_edge ?pool ?on (m : Mesh.t) ~scheme ~tracer ~u ~out =
  match on with
  | Some _ -> Ragged.tracer_edge ?pool ?on m ~scheme ~tracer ~u ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "tracer_edge" "tracer" tracer m.n_cells;
      check_len "tracer_edge" "u" u m.n_edges;
      check_len "tracer_edge" "out" out m.n_edges;
      let ec = csr.edge_cells in
      (match (scheme : Config.tracer_adv) with
      | Config.Centered ->
          range pool 0 m.n_edges (fun ~lo ~hi ->
              for e = lo to hi - 1 do
                let c1 = Array.unsafe_get ec (2 * e)
                and c2 = Array.unsafe_get ec ((2 * e) + 1) in
                Array.unsafe_set out e
                  (0.5
                  *. (Array.unsafe_get tracer c1 +. Array.unsafe_get tracer c2))
              done)
      | Config.Upwind ->
          range pool 0 m.n_edges (fun ~lo ~hi ->
              for e = lo to hi - 1 do
                let c1 = Array.unsafe_get ec (2 * e)
                and c2 = Array.unsafe_get ec ((2 * e) + 1) in
                Array.unsafe_set out e
                  (if Array.unsafe_get u e >= 0. then
                     Array.unsafe_get tracer c1
                   else Array.unsafe_get tracer c2)
              done))

let tend_tracer ?pool ?on (m : Mesh.t) ~h_edge ~u ~tracer_edge ~out =
  match on with
  | Some _ -> Ragged.tend_tracer ?pool ?on m ~h_edge ~u ~tracer_edge ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "tend_tracer" "h_edge" h_edge m.n_edges;
      check_len "tend_tracer" "u" u m.n_edges;
      check_len "tend_tracer" "tracer_edge" tracer_edge m.n_edges;
      check_len "tend_tracer" "out" out m.n_cells;
      let offsets = csr.cell_offsets
      and edges = csr.cell_edges
      and signs = csr.cell_edge_signs in
      let dv = m.dv_edge and area = m.area_cell in
      range pool 0 m.n_cells (fun ~lo ~hi ->
          for c = lo to hi - 1 do
            let j0 = Array.unsafe_get offsets c
            and j1 = Array.unsafe_get offsets (c + 1) in
            let acc = ref 0. in
            for j = j0 to j1 - 1 do
              let e = Array.unsafe_get edges j in
              acc :=
                !acc
                +. (Array.unsafe_get signs j *. Array.unsafe_get h_edge e
                    *. Array.unsafe_get tracer_edge e *. Array.unsafe_get u e
                    *. Array.unsafe_get dv e)
            done;
            Array.unsafe_set out c (-.(!acc) /. Array.unsafe_get area c)
          done)

let tend_tracer_scatter (m : Mesh.t) ~h_edge ~u ~tracer_edge ~out =
  Array.fill out 0 m.n_cells 0.;
  for e = 0 to m.n_edges - 1 do
    let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
    let flux = h_edge.(e) *. tracer_edge.(e) *. u.(e) *. m.dv_edge.(e) in
    out.(c1) <- out.(c1) -. (flux /. m.area_cell.(c1));
    out.(c2) <- out.(c2) +. (flux /. m.area_cell.(c2))
  done

let velocity_laplacian ?pool ?on (m : Mesh.t) ~divergence ~vorticity ~out =
  match on with
  | Some _ -> Ragged.velocity_laplacian ?pool ?on m ~divergence ~vorticity ~out
  | None ->
      let csr : Mesh.csr = Mesh.csr m in
      check_len "velocity_laplacian" "divergence" divergence m.n_cells;
      check_len "velocity_laplacian" "vorticity" vorticity m.n_vertices;
      check_len "velocity_laplacian" "out" out m.n_edges;
      let ec = csr.edge_cells and ev = csr.edge_vertices in
      let dc = m.dc_edge and dv = m.dv_edge in
      range pool 0 m.n_edges (fun ~lo ~hi ->
          for e = lo to hi - 1 do
            let c1 = Array.unsafe_get ec (2 * e)
            and c2 = Array.unsafe_get ec ((2 * e) + 1) in
            let v1 = Array.unsafe_get ev (2 * e)
            and v2 = Array.unsafe_get ev ((2 * e) + 1) in
            Array.unsafe_set out e
              (((Array.unsafe_get divergence c2
                -. Array.unsafe_get divergence c1)
               /. Array.unsafe_get dc e)
              -. ((Array.unsafe_get vorticity v2
                  -. Array.unsafe_get vorticity v1)
                 /. Array.unsafe_get dv e))
          done)

let del4_dissipation ?pool ?on (m : Mesh.t) ~visc4 ~div_lap ~vort_lap ~tend_u =
  if visc4 <> 0. then
    iter pool ?on m.n_edges (fun e ->
        let c1 = m.cells_on_edge.(e).(0) and c2 = m.cells_on_edge.(e).(1) in
        let v1 = m.vertices_on_edge.(e).(0)
        and v2 = m.vertices_on_edge.(e).(1) in
        let lap2 =
          ((div_lap.(c2) -. div_lap.(c1)) /. m.dc_edge.(e))
          -. ((vort_lap.(v2) -. vort_lap.(v1)) /. m.dv_edge.(e))
        in
        tend_u.(e) <- tend_u.(e) -. (visc4 *. lap2))

let next_substep_tracers ?pool ?on (m : Mesh.t) ~coef ~(base : Fields.state)
    ~(tend : Fields.tendencies) ~(provis : Fields.state) =
  Array.iteri
    (fun k row ->
      let base_row = base.Fields.tracers.(k) in
      let tend_row = tend.Fields.tend_tracers.(k) in
      iter_pointwise pool ?on m.n_cells (fun c ->
          row.(c) <-
            ((base.Fields.h.(c) *. base_row.(c)) +. (coef *. tend_row.(c)))
            /. provis.Fields.h.(c)))
    provis.Fields.tracers

(* The accumulator rows hold the conservative quantity h * tracer during
   the step; [finalize_tracers] converts back to concentrations. *)
let seed_tracer_accumulator ?pool ?on (m : Mesh.t) ~(state : Fields.state)
    ~(accum : Fields.state) =
  Array.iteri
    (fun k row ->
      let state_row = state.Fields.tracers.(k) in
      iter_pointwise pool ?on m.n_cells (fun c ->
          row.(c) <- state.Fields.h.(c) *. state_row.(c)))
    accum.Fields.tracers

let accumulate_tracers ?pool ?on (m : Mesh.t) ~coef
    ~(tend : Fields.tendencies) ~(accum : Fields.state) =
  Array.iteri
    (fun k row ->
      let tend_row = tend.Fields.tend_tracers.(k) in
      iter_pointwise pool ?on m.n_cells (fun c ->
          row.(c) <- row.(c) +. (coef *. tend_row.(c))))
    accum.Fields.tracers

let finalize_tracers ?pool ?on (m : Mesh.t) ~(state : Fields.state) =
  Array.iter
    (fun row ->
      iter_pointwise pool ?on m.n_cells (fun c ->
          row.(c) <- row.(c) /. state.Fields.h.(c)))
    state.Fields.tracers

(* Convex/affine state blend for multi-stage integrators:
   out = a*base + b*other + c*tend.  Tracer rows blend in conservative
   (h * tracer) form, so [out.h] is written first. *)
let blend ?pool ?on_cells ?on_edges (m : Mesh.t) ~a ~(base : Fields.state) ~b
    ~(other : Fields.state) ~c ~(tend : Fields.tendencies)
    ~(out : Fields.state) =
  iter_pointwise pool ?on:on_cells m.n_cells (fun i ->
      out.Fields.h.(i) <-
        (a *. base.Fields.h.(i)) +. (b *. other.Fields.h.(i))
        +. (c *. tend.Fields.tend_h.(i)));
  iter_pointwise pool ?on:on_edges m.n_edges (fun i ->
      out.Fields.u.(i) <-
        (a *. base.Fields.u.(i)) +. (b *. other.Fields.u.(i))
        +. (c *. tend.Fields.tend_u.(i)));
  Array.iteri
    (fun k row ->
      let base_row = base.Fields.tracers.(k) in
      let other_row = other.Fields.tracers.(k) in
      let tend_row = tend.Fields.tend_tracers.(k) in
      iter_pointwise pool ?on:on_cells m.n_cells (fun i ->
          row.(i) <-
            ((a *. base.Fields.h.(i) *. base_row.(i))
            +. (b *. other.Fields.h.(i) *. other_row.(i))
            +. (c *. tend_row.(i)))
            /. out.Fields.h.(i)))
    out.Fields.tracers
