open Mpas_numerics
open Mpas_mesh

type t = {
  coef : Vec3.t array array;  (** per cell, aligned with edges_on_cell *)
  east : Vec3.t array;
  north : Vec3.t array;
}

let vertical (m : Mesh.t) c =
  match m.geometry with
  | Mesh.Sphere _ -> m.x_cell.(c)
  | Mesh.Plane _ -> Vec3.ez

let basis (m : Mesh.t) c =
  match m.geometry with
  | Mesh.Plane _ -> (Vec3.ex, Vec3.ey)
  | Mesh.Sphere _ -> (
      match Sphere.tangent_basis m.x_cell.(c) with
      | b -> b
      | exception Invalid_argument _ ->
          (* Exact pole: geographic east is undefined; keep the frame
             right-handed about the outward normal. *)
          let east = Vec3.ex in
          (east, Vec3.cross m.x_cell.(c) east))

let init (m : Mesh.t) =
  let coef =
    Array.init m.n_cells (fun c ->
        let n = m.n_edges_on_cell.(c) in
        let mat = Mat3.zero () in
        for j = 0 to n - 1 do
          Mat3.add_outer mat 1. m.edge_normal.(m.edges_on_cell.(c).(j))
        done;
        (* Pin the radial component to zero: edge normals are tangent
           to the sphere at the edge, not at the cell center, so the
           plain normal matrix is near-singular radially.  A penalty of
           the trace scale keeps the fit tangent without biasing it. *)
        let trace = mat.Mat3.m.(0) +. mat.Mat3.m.(4) +. mat.Mat3.m.(8) in
        Mat3.add_outer mat trace (vertical m c);
        let minv = Mat3.inv mat in
        Array.init n (fun j ->
            Mat3.mul_vec minv m.edge_normal.(m.edges_on_cell.(c).(j))))
  in
  let east = Array.make m.n_cells Vec3.ex in
  let north = Array.make m.n_cells Vec3.ey in
  for c = 0 to m.n_cells - 1 do
    let e, n = basis m c in
    east.(c) <- e;
    north.(c) <- n
  done;
  { coef; east; north }

(* A4 alone: the Cartesian least-squares reconstruction.  Kept
   bit-identical to the fused [run]: the accumulation is the same, only
   the horizontal projection is deferred to [run_horizontal]. *)
let run_cartesian ?pool ?on t (m : Mesh.t) ~u ~(out : Fields.reconstruction) =
  Operators.iter pool ?on m.n_cells (fun c ->
      let acc = ref Vec3.zero in
      let coefs = t.coef.(c) in
      for j = 0 to m.n_edges_on_cell.(c) - 1 do
        acc := Vec3.axpy u.(m.edges_on_cell.(c).(j)) coefs.(j) !acc
      done;
      let v = !acc in
      out.ux.(c) <- v.Vec3.x;
      out.uy.(c) <- v.Vec3.y;
      out.uz.(c) <- v.Vec3.z)

(* X6 alone: project the stored Cartesian vector onto the local
   east/north frame.  Reading the components back from [out] reproduces
   exactly the dot products of the fused form (they are the same float64
   values), so run_cartesian followed by run_horizontal matches [run]
   bit for bit. *)
let run_horizontal ?pool ?on t (m : Mesh.t) ~(out : Fields.reconstruction) =
  Operators.iter pool ?on m.n_cells (fun c ->
      let v = { Vec3.x = out.ux.(c); y = out.uy.(c); z = out.uz.(c) } in
      out.zonal.(c) <- Vec3.dot v t.east.(c);
      out.meridional.(c) <- Vec3.dot v t.north.(c))

(* The fused-runtime tile form of A4 [+X6]: one contiguous cell range
   with the Vec3 arithmetic scalarized — three float accumulators in
   axpy's exact operation order, the dot products expanded in dot's
   order — so no Vec3 record allocates inside the loop and the result
   stays bit-identical to [run] (with [x6]) or [run_cartesian]
   (without). *)
let run_range t (m : Mesh.t) ~u ~(out : Fields.reconstruction) ~x6 ~lo ~hi =
  for c = lo to hi - 1 do
    let ax = ref 0. and ay = ref 0. and az = ref 0. in
    let coefs = t.coef.(c) in
    let row = m.edges_on_cell.(c) in
    for j = 0 to m.n_edges_on_cell.(c) - 1 do
      let a = Array.unsafe_get u (Array.unsafe_get row j) in
      let cj = Array.unsafe_get coefs j in
      ax := (a *. cj.Vec3.x) +. !ax;
      ay := (a *. cj.Vec3.y) +. !ay;
      az := (a *. cj.Vec3.z) +. !az
    done;
    let vx = !ax and vy = !ay and vz = !az in
    out.ux.(c) <- vx;
    out.uy.(c) <- vy;
    out.uz.(c) <- vz;
    if x6 then begin
      let e = t.east.(c) and n = t.north.(c) in
      out.zonal.(c) <- (vx *. e.Vec3.x) +. (vy *. e.Vec3.y) +. (vz *. e.Vec3.z);
      out.meridional.(c) <-
        (vx *. n.Vec3.x) +. (vy *. n.Vec3.y) +. (vz *. n.Vec3.z)
    end
  done

let run ?pool ?on t (m : Mesh.t) ~u ~(out : Fields.reconstruction) =
  Operators.iter pool ?on m.n_cells (fun c ->
      let acc = ref Vec3.zero in
      let coefs = t.coef.(c) in
      for j = 0 to m.n_edges_on_cell.(c) - 1 do
        acc := Vec3.axpy u.(m.edges_on_cell.(c).(j)) coefs.(j) !acc
      done;
      let v = !acc in
      out.ux.(c) <- v.Vec3.x;
      out.uy.(c) <- v.Vec3.y;
      out.uz.(c) <- v.Vec3.z;
      out.zonal.(c) <- Vec3.dot v t.east.(c);
      out.meridional.(c) <- Vec3.dot v t.north.(c))
