open Mpas_mesh

(* Fused super-kernels for the task runtime: each function runs a legal
   kernel chain (as packed by the runtime's spec planner) over one
   contiguous tile [lo, hi) of its index space, carrying intermediate
   values in registers where a member point-reads what the previous
   member just wrote.  Every member's output array is still written in
   full — the analysis layer (footprint inference, race replay) keeps
   seeing the union footprint of the chain.

   Bit-identity with the member-sequential kernels in {!Operators} is
   load-bearing: every accumulation walks the same CSR rows in the same
   order and every expression keeps the member kernel's operation
   order, so a register-carried value is the very float64 the member
   would have re-loaded. *)

let check_len kernel name a n =
  if Array.length a < n then
    invalid_arg
      (Printf.sprintf "Fused.%s: %s has %d elements, need %d" kernel name
         (Array.length a) n)

(* A1 [+X4]: height tendency over cells [lo, hi); [x4 = Some (coef,
   accum_h, publish)] rides the accumulative update on the same sweep
   and, in the final substep, publishes the slice into the state. *)
let tend_h_chain (m : Mesh.t) ~h_edge ~u ~out ~x4 ~lo ~hi =
  let csr : Mesh.csr = Mesh.csr m in
  check_len "tend_h_chain" "h_edge" h_edge m.n_edges;
  check_len "tend_h_chain" "u" u m.n_edges;
  check_len "tend_h_chain" "out" out m.n_cells;
  let offsets = csr.cell_offsets
  and edges = csr.cell_edges
  and signs = csr.cell_edge_signs in
  let dv = m.dv_edge and area = m.area_cell in
  match x4 with
  | None ->
      for c = lo to hi - 1 do
        let j0 = Array.unsafe_get offsets c
        and j1 = Array.unsafe_get offsets (c + 1) in
        let acc = ref 0. in
        for j = j0 to j1 - 1 do
          let e = Array.unsafe_get edges j in
          acc :=
            !acc
            +. (Array.unsafe_get signs j *. Array.unsafe_get h_edge e
                *. Array.unsafe_get u e *. Array.unsafe_get dv e)
        done;
        Array.unsafe_set out c (-.(!acc) /. Array.unsafe_get area c)
      done
  | Some (coef, accum_h, publish) ->
      check_len "tend_h_chain" "accum_h" accum_h m.n_cells;
      for c = lo to hi - 1 do
        let j0 = Array.unsafe_get offsets c
        and j1 = Array.unsafe_get offsets (c + 1) in
        let acc = ref 0. in
        for j = j0 to j1 - 1 do
          let e = Array.unsafe_get edges j in
          acc :=
            !acc
            +. (Array.unsafe_get signs j *. Array.unsafe_get h_edge e
                *. Array.unsafe_get u e *. Array.unsafe_get dv e)
        done;
        let th = -.(!acc) /. Array.unsafe_get area c in
        Array.unsafe_set out c th;
        let a = Array.unsafe_get accum_h c +. (coef *. th) in
        Array.unsafe_set accum_h c a;
        match publish with
        | None -> ()
        | Some state_h -> Array.unsafe_set state_h c a
      done

(* B1 [+C1] [+X1] [+X2] [+X5]: velocity tendency over edges [lo, hi)
   with the optional dissipation, bottom drag, boundary enforcement and
   accumulative update folded into the same sweep.  The gated members
   pass [None]/[false] when their coefficient is zero (the member
   kernels are no-ops then), so the fused loop stays branch-light. *)
let tend_u_chain (m : Mesh.t) ~pv_average ~gravity ~h ~b ~ke ~h_edge ~u
    ~pv_edge ~out ~dissip ~drag ~boundary ~x5 ~lo ~hi =
  let csr : Mesh.csr = Mesh.csr m in
  check_len "tend_u_chain" "h" h m.n_cells;
  check_len "tend_u_chain" "b" b m.n_cells;
  check_len "tend_u_chain" "ke" ke m.n_cells;
  check_len "tend_u_chain" "h_edge" h_edge m.n_edges;
  check_len "tend_u_chain" "u" u m.n_edges;
  check_len "tend_u_chain" "pv_edge" pv_edge m.n_edges;
  check_len "tend_u_chain" "out" out m.n_edges;
  let offsets = csr.eoe_offsets
  and eoe = csr.eoe_edges
  and w = csr.eoe_weights
  and ec = csr.edge_cells
  and ev = csr.edge_vertices in
  let dc = m.dc_edge and dv = m.dv_edge in
  let bnd = m.boundary_edge in
  let symmetric = pv_average = Config.Symmetric in
  for e = lo to hi - 1 do
    let i0 = Array.unsafe_get offsets e
    and i1 = Array.unsafe_get offsets (e + 1) in
    let q_flux = ref 0. in
    if symmetric then begin
      let pe = Array.unsafe_get pv_edge e in
      for i = i0 to i1 - 1 do
        let e' = Array.unsafe_get eoe i in
        let q = 0.5 *. (pe +. Array.unsafe_get pv_edge e') in
        q_flux :=
          !q_flux
          +. (Array.unsafe_get w i *. Array.unsafe_get u e'
              *. Array.unsafe_get h_edge e' *. q)
      done
    end
    else begin
      let q = Array.unsafe_get pv_edge e in
      for i = i0 to i1 - 1 do
        let e' = Array.unsafe_get eoe i in
        q_flux :=
          !q_flux
          +. (Array.unsafe_get w i *. Array.unsafe_get u e'
              *. Array.unsafe_get h_edge e' *. q)
      done
    end;
    let c1 = Array.unsafe_get ec (2 * e)
    and c2 = Array.unsafe_get ec ((2 * e) + 1) in
    let e1 =
      (gravity *. (Array.unsafe_get h c1 +. Array.unsafe_get b c1))
      +. Array.unsafe_get ke c1
    and e2 =
      (gravity *. (Array.unsafe_get h c2 +. Array.unsafe_get b c2))
      +. Array.unsafe_get ke c2
    in
    let grad = (e2 -. e1) /. Array.unsafe_get dc e in
    let t = ref (!q_flux -. grad) in
    (match dissip with
    | None -> ()
    | Some (visc2, divergence, vorticity) ->
        let v1 = Array.unsafe_get ev (2 * e)
        and v2 = Array.unsafe_get ev ((2 * e) + 1) in
        let lap =
          ((Array.unsafe_get divergence c2 -. Array.unsafe_get divergence c1)
          /. Array.unsafe_get dc e)
          -. ((Array.unsafe_get vorticity v2 -. Array.unsafe_get vorticity v1)
             /. Array.unsafe_get dv e)
        in
        t := !t +. (visc2 *. lap));
    if drag <> 0. then t := !t -. (drag *. Array.unsafe_get u e);
    if boundary && Array.unsafe_get bnd e then t := 0.;
    Array.unsafe_set out e !t;
    match x5 with
    | None -> ()
    | Some (coef, accum_u, publish) -> (
        let a = Array.unsafe_get accum_u e +. (coef *. !t) in
        Array.unsafe_set accum_u e a;
        match publish with
        | None -> ()
        | Some state_u -> Array.unsafe_set state_u e a)
  done

(* [H2] [+A2] [+A3] [+X4]: the cell-space diagnostics share one walk of
   the cell-edge CSR row; [d2 = None] when the advection order is
   second (H2 is a no-op then) and each member's output is optional so
   partial chains compile to the same loop. *)
let diag_cells_chain (m : Mesh.t) ~h ~u ~d2 ~ke_out ~div_out ~x4 ~tend_h ~lo
    ~hi =
  let csr : Mesh.csr = Mesh.csr m in
  check_len "diag_cells_chain" "h" h m.n_cells;
  check_len "diag_cells_chain" "u" u m.n_edges;
  let offsets = csr.cell_offsets
  and edges = csr.cell_edges
  and signs = csr.cell_edge_signs
  and nbors = csr.cell_neighbors in
  let dc = m.dc_edge and dv = m.dv_edge and area = m.area_cell in
  (match d2 with Some o -> check_len "diag_cells_chain" "d2" o m.n_cells | None -> ());
  (match ke_out with Some o -> check_len "diag_cells_chain" "ke_out" o m.n_cells | None -> ());
  (match div_out with Some o -> check_len "diag_cells_chain" "div_out" o m.n_cells | None -> ());
  for c = lo to hi - 1 do
    let j0 = Array.unsafe_get offsets c
    and j1 = Array.unsafe_get offsets (c + 1) in
    (match d2 with
    | None -> ()
    | Some out ->
        let hc = Array.unsafe_get h c in
        let acc = ref 0. in
        for j = j0 to j1 - 1 do
          let e = Array.unsafe_get edges j in
          let c' = Array.unsafe_get nbors j in
          acc :=
            !acc
            +. (Array.unsafe_get dv e
                *. (Array.unsafe_get h c' -. hc)
                /. Array.unsafe_get dc e)
        done;
        Array.unsafe_set out c (!acc /. Array.unsafe_get area c));
    (match ke_out with
    | None -> ()
    | Some out ->
        let acc = ref 0. in
        for j = j0 to j1 - 1 do
          let e = Array.unsafe_get edges j in
          let ue = Array.unsafe_get u e in
          acc :=
            !acc
            +. (0.25 *. Array.unsafe_get dc e *. Array.unsafe_get dv e *. ue
                *. ue)
        done;
        Array.unsafe_set out c (!acc /. Array.unsafe_get area c));
    (match div_out with
    | None -> ()
    | Some out ->
        let acc = ref 0. in
        for j = j0 to j1 - 1 do
          let e = Array.unsafe_get edges j in
          acc :=
            !acc
            +. (Array.unsafe_get signs j *. Array.unsafe_get u e
                *. Array.unsafe_get dv e)
        done;
        Array.unsafe_set out c (!acc /. Array.unsafe_get area c));
    match x4 with
    | None -> ()
    | Some (coef, accum_h, publish) -> (
        let a =
          Array.unsafe_get accum_h c +. (coef *. Array.unsafe_get tend_h c)
        in
        Array.unsafe_set accum_h c a;
        match publish with
        | None -> ()
        | Some state_h -> Array.unsafe_set state_h c a)
  done

(* B2 [+G] [+X5]: edge-space diagnostics; G's tangential-velocity row
   walk and X5's accumulative update ride the h_edge sweep. *)
let diag_edges_chain (m : Mesh.t) ~order ~h ~d2fdx2_cell ~h_edge_out ~g ~x5
    ~tend_u ~lo ~hi =
  let csr : Mesh.csr = Mesh.csr m in
  check_len "diag_edges_chain" "h" h m.n_cells;
  check_len "diag_edges_chain" "h_edge_out" h_edge_out m.n_edges;
  let ec = csr.edge_cells in
  let offsets = csr.eoe_offsets and eoe = csr.eoe_edges and w = csr.eoe_weights in
  let dc = m.dc_edge in
  let fourth = order = Config.Fourth in
  if fourth then check_len "diag_edges_chain" "d2fdx2_cell" d2fdx2_cell m.n_cells;
  for e = lo to hi - 1 do
    let c1 = Array.unsafe_get ec (2 * e)
    and c2 = Array.unsafe_get ec ((2 * e) + 1) in
    (if fourth then begin
       let dce = Array.unsafe_get dc e in
       Array.unsafe_set h_edge_out e
         ((0.5 *. (Array.unsafe_get h c1 +. Array.unsafe_get h c2))
         -. (dce *. dce /. 24.
             *. (Array.unsafe_get d2fdx2_cell c1
                +. Array.unsafe_get d2fdx2_cell c2)))
     end
     else
       Array.unsafe_set h_edge_out e
         (0.5 *. (Array.unsafe_get h c1 +. Array.unsafe_get h c2)));
    (match g with
    | None -> ()
    | Some (u, v_out) ->
        let i0 = Array.unsafe_get offsets e
        and i1 = Array.unsafe_get offsets (e + 1) in
        let acc = ref 0. in
        for i = i0 to i1 - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get w i
                *. Array.unsafe_get u (Array.unsafe_get eoe i))
        done;
        Array.unsafe_set v_out e !acc);
    match x5 with
    | None -> ()
    | Some (coef, accum_u, publish) -> (
        let a =
          Array.unsafe_get accum_u e +. (coef *. Array.unsafe_get tend_u e)
        in
        Array.unsafe_set accum_u e a;
        match publish with
        | None -> ()
        | Some state_u -> Array.unsafe_set state_u e a)
  done

(* D1 [+C2] [+D2]: the vertex-space diagnostics share the stride-3
   vertex rows; D2 reads the circulation and thickness it just
   computed from registers. *)
let vortex_chain (m : Mesh.t) ~u ~h ~vort_out ~hv_out ~pv_out ~lo ~hi =
  let csr : Mesh.csr = Mesh.csr m in
  check_len "vortex_chain" "u" u m.n_edges;
  check_len "vortex_chain" "h" h m.n_cells;
  check_len "vortex_chain" "vort_out" vort_out m.n_vertices;
  let ve = csr.vertex_edges
  and esigns = csr.vertex_edge_signs
  and vc = csr.vertex_cells
  and kites = csr.vertex_kite_areas in
  let dc = m.dc_edge and area = m.area_triangle and fv = m.f_vertex in
  (match hv_out with Some o -> check_len "vortex_chain" "hv_out" o m.n_vertices | None -> ());
  (match pv_out with Some o -> check_len "vortex_chain" "pv_out" o m.n_vertices | None -> ());
  for v = lo to hi - 1 do
    let b = 3 * v in
    let acc = ref 0. in
    for k = b to b + 2 do
      let e = Array.unsafe_get ve k in
      acc :=
        !acc
        +. (Array.unsafe_get esigns k *. Array.unsafe_get u e
            *. Array.unsafe_get dc e)
    done;
    let vort = !acc /. Array.unsafe_get area v in
    Array.unsafe_set vort_out v vort;
    let hv =
      match hv_out with
      | None -> 0.
      | Some out ->
          let acc = ref 0. in
          for k = b to b + 2 do
            acc :=
              !acc
              +. (Array.unsafe_get kites k
                  *. Array.unsafe_get h (Array.unsafe_get vc k))
          done;
          let hv = !acc /. Array.unsafe_get area v in
          Array.unsafe_set out v hv;
          hv
    in
    match pv_out with
    | None -> ()
    | Some out ->
        Array.unsafe_set out v ((Array.unsafe_get fv v +. vort) /. hv)
  done

(* [G+] H1 [+F]: the potential-vorticity edge chain.  H1's gradients
   and G's tangential velocity stay in registers for F's APVM
   correction; all member outputs are still stored. *)
let pv_edge_chain (m : Mesh.t) ~g ~pv_cell ~pv_vertex ~gn_out ~gt_out ~f ~lo
    ~hi =
  let csr : Mesh.csr = Mesh.csr m in
  check_len "pv_edge_chain" "pv_cell" pv_cell m.n_cells;
  check_len "pv_edge_chain" "pv_vertex" pv_vertex m.n_vertices;
  check_len "pv_edge_chain" "gn_out" gn_out m.n_edges;
  check_len "pv_edge_chain" "gt_out" gt_out m.n_edges;
  let ec = csr.edge_cells and ev = csr.edge_vertices in
  let offsets = csr.eoe_offsets and eoe = csr.eoe_edges and w = csr.eoe_weights in
  let dc = m.dc_edge and dv = m.dv_edge in
  for e = lo to hi - 1 do
    let v1 = Array.unsafe_get ev (2 * e)
    and v2 = Array.unsafe_get ev ((2 * e) + 1) in
    let tv =
      match g with
      | None -> 0.
      | Some (u, v_out) ->
          let i0 = Array.unsafe_get offsets e
          and i1 = Array.unsafe_get offsets (e + 1) in
          let acc = ref 0. in
          for i = i0 to i1 - 1 do
            acc :=
              !acc
              +. (Array.unsafe_get w i
                  *. Array.unsafe_get u (Array.unsafe_get eoe i))
          done;
          Array.unsafe_set v_out e !acc;
          !acc
    in
    let c1 = Array.unsafe_get ec (2 * e)
    and c2 = Array.unsafe_get ec ((2 * e) + 1) in
    let gn =
      (Array.unsafe_get pv_cell c2 -. Array.unsafe_get pv_cell c1)
      /. Array.unsafe_get dc e
    and gt =
      (Array.unsafe_get pv_vertex v2 -. Array.unsafe_get pv_vertex v1)
      /. Array.unsafe_get dv e
    in
    Array.unsafe_set gn_out e gn;
    Array.unsafe_set gt_out e gt;
    match f with
    | None -> ()
    | Some (apvm_factor, dt, u, v_tangential, out) ->
        let tv =
          match g with None -> Array.unsafe_get v_tangential e | Some _ -> tv
        in
        let base =
          0.5 *. (Array.unsafe_get pv_vertex v1 +. Array.unsafe_get pv_vertex v2)
        in
        let advect = (Array.unsafe_get u e *. gn) +. (tv *. gt) in
        Array.unsafe_set out e (base -. (apvm_factor *. dt *. advect))
  done

(* E over cells [lo, hi): the CSR fast-path loop of
   {!Operators.pv_cell}.  E packs into no chain (its vertex-stencil
   input collides with every cell-space neighbour), but a tiled part of
   it must not fall back to the ragged index path — the per-element
   local-index search there costs an order of magnitude more than the
   CSR reverse links. *)
let pv_cell_range (m : Mesh.t) ~pv_vertex ~out ~lo ~hi =
  let csr : Mesh.csr = Mesh.csr m in
  check_len "pv_cell_range" "pv_vertex" pv_vertex m.n_vertices;
  check_len "pv_cell_range" "out" out m.n_cells;
  let offsets = csr.cell_offsets
  and verts = csr.cell_vertices
  and vc = csr.vertex_cells
  and kites = csr.vertex_kite_areas in
  let area = m.area_cell in
  for c = lo to hi - 1 do
    let j0 = Array.unsafe_get offsets c
    and j1 = Array.unsafe_get offsets (c + 1) in
    let acc = ref 0. in
    for j = j0 to j1 - 1 do
      let v = Array.unsafe_get verts j in
      let b = 3 * v in
      (* The reverse link is validated by [Mesh.csr], so the third slot
         is implied when the first two miss. *)
      let k =
        if Array.unsafe_get vc b = c then b
        else if Array.unsafe_get vc (b + 1) = c then b + 1
        else b + 2
      in
      acc :=
        !acc +. (Array.unsafe_get kites k *. Array.unsafe_get pv_vertex v)
    done;
    Array.unsafe_set out c (!acc /. Array.unsafe_get area c)
  done

(* X3 over its slice of both spaces: the pointwise provisional-state
   update of {!Operators.next_substep_state}, cells [clo, chi) and
   edges [elo, ehi). *)
let next_substep_range (m : Mesh.t) ~coef ~(base : Fields.state)
    ~(tend : Fields.tendencies) ~(provis : Fields.state) ~clo ~chi ~elo ~ehi =
  let bh = base.Fields.h and th = tend.Fields.tend_h and ph = provis.Fields.h in
  let bu = base.Fields.u and tu = tend.Fields.tend_u and pu = provis.Fields.u in
  check_len "next_substep_range" "base.h" bh m.n_cells;
  check_len "next_substep_range" "tend_h" th m.n_cells;
  check_len "next_substep_range" "provis.h" ph m.n_cells;
  check_len "next_substep_range" "base.u" bu m.n_edges;
  check_len "next_substep_range" "tend_u" tu m.n_edges;
  check_len "next_substep_range" "provis.u" pu m.n_edges;
  for c = clo to chi - 1 do
    Array.unsafe_set ph c
      (Array.unsafe_get bh c +. (coef *. Array.unsafe_get th c))
  done;
  for e = elo to ehi - 1 do
    Array.unsafe_set pu e
      (Array.unsafe_get bu e +. (coef *. Array.unsafe_get tu e))
  done

(* The A4 [+X6] reconstruction chain lives in {!Reconstruct.run_range}:
   its coefficient table is abstract, so the scalarized fused loop is
   implemented next to it. *)
