(** The RK-4 time stepping driver (paper Algorithm 1) over the six
    model kernels, with pluggable execution engines.

    Engines differ exactly along the axes the paper studies:
    - [original]: the pre-refactoring code path — irregular reductions
      run in their scatter (edge/vertex-order) form, sequentially;
    - [refactored]: all loops in regularity-aware gather form
      (Algorithm 3), sequential;
    - [parallel pool]: the gather form with every pattern loop run on
      the domain pool — the "OpenMP" execution of the hybrid design. *)

open Mpas_mesh
open Mpas_par

type kernel =
  | Compute_tend
  | Enforce_boundary_edge
  | Compute_next_substep_state
  | Compute_solve_diagnostics
  | Accumulative_update
  | Mpas_reconstruct
  | Halo_exchange
      (** communication pseudo-kernel of the distributed runtime; never
          issued by the serial drivers and absent from [all_kernels] *)

val kernel_name : kernel -> string
val all_kernels : kernel list

type workspace = {
  provis : Fields.state;
  tend : Fields.tendencies;
  accum : Fields.state;
  diag : Fields.diagnostics;
  recon : Fields.reconstruction;
}

type engine = {
  gather : bool;  (** false = original scatter loops *)
  pool : Pool.t option;
  instrument : kernel -> (unit -> unit) -> unit;
      (** wraps every kernel invocation; default just runs it.  A
          custom step may invoke it concurrently from several domains,
          so replacement hooks paired with such an engine must be
          thread-safe (the Obs instrumentation of {!observed} is). *)
  custom : custom option;
      (** when set, {!step} hands the whole step to this function — the
          hook through which the dataflow task runtime
          ([Mpas_runtime.Engine]) plugs in without [Model], [Profile]
          or the benches changing.  The current engine is passed back
          in so instrumentation layered on afterwards
          ({!with_instrument}, {!observed}) is visible to the custom
          step. *)
}

and custom =
  engine ->
  Config.t ->
  Mesh.t ->
  b:float array ->
  recon:Reconstruct.t option ->
  dt:float ->
  state:Fields.state ->
  work:workspace ->
  unit

val original : engine
val refactored : engine
val parallel : Pool.t -> engine

(** Replace the instrumentation hook. *)
val with_instrument : engine -> (kernel -> (unit -> unit) -> unit) -> engine

(** Install a custom whole-step driver (see {!engine}.[custom]). *)
val with_custom : engine -> custom -> engine

(** [observed e] layers Obs instrumentation over [e]: every kernel
    invocation is timed into a [swe.kernel.<name>] histogram timer in
    [registry] (default: the process-wide registry) and wrapped in a
    trace span (category ["kernel"], arguments recording the
    connectivity layout and pool width) when a trace sink is set.
    [e]'s own instrument hook keeps running inside the measurement, so
    observation composes with existing hooks instead of replacing
    them.  With the no-op sink the added cost per kernel call is one
    timer update. *)
val observed : ?registry:Mpas_obs.Metrics.t -> engine -> engine

(** [n_tracers] must match the state the workspace will serve. *)
val alloc_workspace : ?n_tracers:int -> Mesh.t -> workspace

(** Fill [work.diag] from [state] — must run once before the first
    [rk4_step]; every step keeps the diagnostics consistent with the
    state it leaves behind. *)
val init_diagnostics :
  engine -> Config.t -> Mesh.t -> dt:float -> state:Fields.state ->
  work:workspace -> unit

(** Advance [state] by one RK-4 step of size [dt].  [b] is the bottom
    topography at cells; [recon] runs the mpas_reconstruct kernel at
    the end of the step when provided. *)
val rk4_step :
  engine ->
  Config.t ->
  Mesh.t ->
  b:float array ->
  ?recon:Reconstruct.t ->
  dt:float ->
  state:Fields.state ->
  work:workspace ->
  unit ->
  unit

(** One step of the three-stage SSP RK-3 of Shu & Osher — the same
    kernels driven by a different loop (extension; see
    [Config.integrator]). *)
val ssprk3_step :
  engine ->
  Config.t ->
  Mesh.t ->
  b:float array ->
  ?recon:Reconstruct.t ->
  dt:float ->
  state:Fields.state ->
  work:workspace ->
  unit ->
  unit

(** Dispatch on [Config.integrator]. *)
val step :
  engine ->
  Config.t ->
  Mesh.t ->
  b:float array ->
  ?recon:Reconstruct.t ->
  dt:float ->
  state:Fields.state ->
  work:workspace ->
  unit ->
  unit
