(** Kernel profiling: measured wall time per kernel over a few steps —
    the "profiling of the code" that the kernel-level hybrid design
    starts from (paper §II-C). *)

type t = (Timestep.kernel * float) list  (** seconds, one entry per kernel *)

(** [measure model ~steps] runs [steps] RK-4 steps under
    [Timestep.observed] (a fresh, isolated metrics registry) and
    returns accumulated per-kernel times.  The model's state advances;
    its engine is restored afterwards, also when a step raises.  Trace
    spans are emitted if a trace sink is active, and the engine's own
    instrument hook keeps running inside the measurement. *)
val measure : Model.t -> steps:int -> t

(** Per-kernel totals extracted from the [swe.kernel.*] timers of any
    metrics snapshot (kernels without a timer report 0). *)
val of_snapshot : Mpas_obs.Metrics.snapshot -> t

val total : t -> float

(** Kernels sorted by cost, heaviest first. *)
val ranking : t -> t

val to_string : t -> string
