
open Mpas_par

type kernel =
  | Compute_tend
  | Enforce_boundary_edge
  | Compute_next_substep_state
  | Compute_solve_diagnostics
  | Accumulative_update
  | Mpas_reconstruct
  | Halo_exchange

let kernel_name = function
  | Compute_tend -> "compute_tend"
  | Enforce_boundary_edge -> "enforce_boundary_edge"
  | Compute_next_substep_state -> "compute_next_substep_state"
  | Compute_solve_diagnostics -> "compute_solve_diagnostics"
  | Accumulative_update -> "accumulative_update"
  | Mpas_reconstruct -> "mpas_reconstruct"
  | Halo_exchange -> "halo_exchange"

(* Halo_exchange carries no serial profile row: only the distributed
   runtime issues it. *)
let all_kernels =
  [ Compute_tend; Enforce_boundary_edge; Compute_next_substep_state;
    Compute_solve_diagnostics; Accumulative_update; Mpas_reconstruct ]

type workspace = {
  provis : Fields.state;
  tend : Fields.tendencies;
  accum : Fields.state;
  diag : Fields.diagnostics;
  recon : Fields.reconstruction;
}

type engine = {
  gather : bool;
  pool : Pool.t option;
  instrument : kernel -> (unit -> unit) -> unit;
  custom : custom option;
}

and custom =
  engine ->
  Config.t ->
  Mpas_mesh.Mesh.t ->
  b:float array ->
  recon:Reconstruct.t option ->
  dt:float ->
  state:Fields.state ->
  work:workspace ->
  unit

let no_instrument _ f = f ()

let original =
  { gather = false; pool = None; instrument = no_instrument; custom = None }

let refactored =
  { gather = true; pool = None; instrument = no_instrument; custom = None }

let parallel pool =
  { gather = true; pool = Some pool; instrument = no_instrument; custom = None }

let with_instrument e instrument = { e with instrument }
let with_custom e custom = { e with custom = Some custom }

let observed ?(registry = Mpas_obs.Metrics.default) e =
  let open Mpas_obs in
  (* One timer per kernel, resolved once; the span arguments record the
     engine variant the measurement was taken under. *)
  let timers =
    List.map
      (fun k -> (k, Metrics.timer ~registry ("swe.kernel." ^ kernel_name k)))
      all_kernels
  in
  let layout = if e.gather then "csr" else "ragged" in
  let domains =
    match e.pool with Some p -> Mpas_par.Pool.size p | None -> 1
  in
  let args =
    [ ("layout", layout); ("domains", string_of_int domains) ]
  in
  let base = e.instrument in
  with_instrument e (fun kernel f ->
      Metrics.Timer.time (List.assq kernel timers) (fun () ->
          Trace.with_span ~cat:"kernel" ~args (kernel_name kernel) (fun () ->
              base kernel f)))

let alloc_workspace ?(n_tracers = 0) m =
  {
    provis = Fields.alloc_state ~n_tracers m;
    tend = Fields.alloc_tendencies ~n_tracers m;
    accum = Fields.alloc_state ~n_tracers m;
    diag = Fields.alloc_diagnostics ~n_tracers m;
    recon = Fields.alloc_reconstruction m;
  }

(* --- kernels ----------------------------------------------------------- *)

let compute_solve_diagnostics e (cfg : Config.t) m ~dt ~(state : Fields.state)
    ~(diag : Fields.diagnostics) =
  let pool = e.pool in
  let h = state.h and u = state.u in
  if e.gather then begin
    (match cfg.h_adv_order with
    | Config.Second -> ()
    | Config.Fourth -> Operators.d2fdx2 ?pool m ~h ~out:diag.d2fdx2_cell);
    Operators.h_edge ?pool m ~order:cfg.h_adv_order ~h
      ~d2fdx2_cell:diag.d2fdx2_cell ~out:diag.h_edge;
    Operators.kinetic_energy ?pool m ~u ~out:diag.ke;
    Operators.divergence ?pool m ~u ~out:diag.divergence;
    Operators.vorticity ?pool m ~u ~out:diag.vorticity;
    Operators.h_vertex ?pool m ~h ~out:diag.h_vertex
  end
  else begin
    (match cfg.h_adv_order with
    | Config.Second -> ()
    | Config.Fourth -> Operators.d2fdx2_scatter m ~h ~out:diag.d2fdx2_cell);
    Operators.h_edge m ~order:cfg.h_adv_order ~h
      ~d2fdx2_cell:diag.d2fdx2_cell ~out:diag.h_edge;
    Operators.kinetic_energy_scatter m ~u ~out:diag.ke;
    Operators.divergence_scatter m ~u ~out:diag.divergence;
    Operators.vorticity_scatter m ~u ~out:diag.vorticity;
    Operators.h_vertex m ~h ~out:diag.h_vertex
  end;
  Operators.pv_vertex ?pool m ~vorticity:diag.vorticity ~h_vertex:diag.h_vertex
    ~out:diag.pv_vertex;
  (if e.gather then
     Operators.pv_cell ?pool m ~pv_vertex:diag.pv_vertex ~out:diag.pv_cell
   else Operators.pv_cell_scatter m ~pv_vertex:diag.pv_vertex ~out:diag.pv_cell);
  Operators.tangential_velocity ?pool m ~u ~out:diag.v_tangential;
  Operators.grad_pv ?pool m ~pv_cell:diag.pv_cell ~pv_vertex:diag.pv_vertex
    ~out_n:diag.grad_pv_n ~out_t:diag.grad_pv_t;
  Operators.pv_edge ?pool m ~apvm_factor:cfg.apvm_factor ~dt
    ~pv_vertex:diag.pv_vertex ~grad_pv_n:diag.grad_pv_n
    ~grad_pv_t:diag.grad_pv_t ~u ~v_tangential:diag.v_tangential
    ~out:diag.pv_edge;
  Array.iteri
    (fun k tracer ->
      Operators.tracer_edge ?pool m ~scheme:cfg.tracer_adv ~tracer ~u
        ~out:diag.tracer_edge.(k))
    state.Fields.tracers

let compute_tend e (cfg : Config.t) m ~b ~(state : Fields.state)
    ~(diag : Fields.diagnostics) ~(tend : Fields.tendencies) =
  let pool = e.pool in
  (if e.gather then
     Operators.tend_h ?pool m ~h_edge:diag.h_edge ~u:state.u ~out:tend.tend_h
   else
     Operators.tend_h_scatter m ~h_edge:diag.h_edge ~u:state.u
       ~out:tend.tend_h);
  Operators.tend_u ?pool ~pv_average:cfg.pv_average m ~gravity:cfg.gravity
    ~h:state.h ~b ~ke:diag.ke ~h_edge:diag.h_edge ~u:state.u
    ~pv_edge:diag.pv_edge ~out:tend.tend_u;
  Operators.dissipation ?pool m ~visc2:cfg.visc2 ~divergence:diag.divergence
    ~vorticity:diag.vorticity ~tend_u:tend.tend_u;
  Operators.local_forcing ?pool m ~drag:cfg.bottom_drag ~u:state.u
    ~tend_u:tend.tend_u;
  (* Biharmonic diffusion (extension): two more Laplacian sweeps. *)
  if cfg.visc4 <> 0. then begin
    Operators.velocity_laplacian ?pool m ~divergence:diag.divergence
      ~vorticity:diag.vorticity ~out:diag.lap_u;
    (if e.gather then begin
       Operators.divergence ?pool m ~u:diag.lap_u ~out:diag.div_lap;
       Operators.vorticity ?pool m ~u:diag.lap_u ~out:diag.vort_lap
     end
     else begin
       Operators.divergence_scatter m ~u:diag.lap_u ~out:diag.div_lap;
       Operators.vorticity_scatter m ~u:diag.lap_u ~out:diag.vort_lap
     end);
    Operators.del4_dissipation ?pool m ~visc4:cfg.visc4 ~div_lap:diag.div_lap
      ~vort_lap:diag.vort_lap ~tend_u:tend.tend_u
  end;
  (* Tracer transport (extension): conservative flux divergence. *)
  Array.iteri
    (fun k tracer_edge ->
      if e.gather then
        Operators.tend_tracer ?pool m ~h_edge:diag.h_edge ~u:state.u
          ~tracer_edge ~out:tend.tend_tracers.(k)
      else
        Operators.tend_tracer_scatter m ~h_edge:diag.h_edge ~u:state.u
          ~tracer_edge ~out:tend.tend_tracers.(k))
    diag.tracer_edge

(* --- driver ------------------------------------------------------------- *)

let init_diagnostics e cfg m ~dt ~state ~work =
  compute_solve_diagnostics e cfg m ~dt ~state ~diag:work.diag

let rk4_step e cfg m ~b ?recon ~dt ~(state : Fields.state) ~work () =
  let substep_coef = [| dt /. 2.; dt /. 2.; dt |] in
  let accum_coef = [| dt /. 6.; dt /. 3.; dt /. 3.; dt /. 6. |] in
  Fields.blit_state ~src:state ~dst:work.accum;
  Fields.blit_state ~src:state ~dst:work.provis;
  (* Tracer accumulators carry the conservative quantity h * tracer. *)
  Operators.seed_tracer_accumulator ?pool:e.pool m ~state ~accum:work.accum;
  (* Invariant: work.diag matches work.provis at every compute_tend. *)
  for rk = 0 to 3 do
    e.instrument Compute_tend (fun () ->
        compute_tend e cfg m ~b ~state:work.provis ~diag:work.diag
          ~tend:work.tend);
    e.instrument Enforce_boundary_edge (fun () ->
        Operators.enforce_boundary_edge ?pool:e.pool m ~tend_u:work.tend.tend_u);
    if rk < 3 then begin
      e.instrument Compute_next_substep_state (fun () ->
          Operators.next_substep_state ?pool:e.pool m ~coef:substep_coef.(rk)
            ~base:state ~tend:work.tend ~provis:work.provis;
          Operators.next_substep_tracers ?pool:e.pool m
            ~coef:substep_coef.(rk) ~base:state ~tend:work.tend
            ~provis:work.provis);
      e.instrument Compute_solve_diagnostics (fun () ->
          compute_solve_diagnostics e cfg m ~dt ~state:work.provis
            ~diag:work.diag);
      e.instrument Accumulative_update (fun () ->
          Operators.accumulate ?pool:e.pool m ~coef:accum_coef.(rk)
            ~tend:work.tend ~accum:work.accum;
          Operators.accumulate_tracers ?pool:e.pool m ~coef:accum_coef.(rk)
            ~tend:work.tend ~accum:work.accum)
    end
    else begin
      e.instrument Accumulative_update (fun () ->
          Operators.accumulate ?pool:e.pool m ~coef:accum_coef.(rk)
            ~tend:work.tend ~accum:work.accum;
          Operators.accumulate_tracers ?pool:e.pool m ~coef:accum_coef.(rk)
            ~tend:work.tend ~accum:work.accum);
      Fields.blit_state ~src:work.accum ~dst:state;
      Operators.finalize_tracers ?pool:e.pool m ~state;
      e.instrument Compute_solve_diagnostics (fun () ->
          compute_solve_diagnostics e cfg m ~dt ~state ~diag:work.diag);
      match recon with
      | None -> ()
      | Some r ->
          e.instrument Mpas_reconstruct (fun () ->
              Reconstruct.run ?pool:e.pool r m ~u:state.u ~out:work.recon)
    end
  done

(* Strong-stability-preserving RK-3 (Shu & Osher 1988):
     s1 = state + dt L(state)
     s2 = 3/4 state + 1/4 (s1 + dt L(s1))
     new = 1/3 state + 2/3 (s2 + dt L(s2))
   The same six kernels as Algorithm 1 in a different driver loop; the
   paper's registry and data-flow diagram are untouched. *)
let ssprk3_step e cfg m ~b ?recon ~dt ~(state : Fields.state) ~work () =
  let stage ~a ~bcoef ~c ~from ~out =
    e.instrument Compute_tend (fun () ->
        compute_tend e cfg m ~b ~state:from ~diag:work.diag ~tend:work.tend);
    e.instrument Enforce_boundary_edge (fun () ->
        Operators.enforce_boundary_edge ?pool:e.pool m ~tend_u:work.tend.tend_u);
    e.instrument Compute_next_substep_state (fun () ->
        Operators.blend ?pool:e.pool m ~a ~base:state ~b:bcoef ~other:from ~c
          ~tend:work.tend ~out);
    e.instrument Compute_solve_diagnostics (fun () ->
        compute_solve_diagnostics e cfg m ~dt ~state:out ~diag:work.diag)
  in
  (* Diagnostics entering the step describe [state]. *)
  Fields.blit_state ~src:state ~dst:work.provis;
  stage ~a:1. ~bcoef:0. ~c:dt ~from:work.provis ~out:work.accum;
  stage ~a:(3. /. 4.) ~bcoef:(1. /. 4.) ~c:(dt /. 4.) ~from:work.accum
    ~out:work.provis;
  stage ~a:(1. /. 3.) ~bcoef:(2. /. 3.) ~c:(2. *. dt /. 3.) ~from:work.provis
    ~out:work.accum;
  Fields.blit_state ~src:work.accum ~dst:state;
  match recon with
  | None -> ()
  | Some r ->
      e.instrument Mpas_reconstruct (fun () ->
          Reconstruct.run ?pool:e.pool r m ~u:state.Fields.u ~out:work.recon)

(* Dispatch: a custom step (the dataflow task runtime) takes the whole
   step over; otherwise select the configured integrator. *)
let step e (cfg : Config.t) m ~b ?recon ~dt ~state ~work () =
  match e.custom with
  | Some f -> f e cfg m ~b ~recon ~dt ~state ~work
  | None -> (
      match cfg.Config.integrator with
      | Config.Rk4 -> rk4_step e cfg m ~b ?recon ~dt ~state ~work ()
      | Config.Ssprk3 -> ssprk3_step e cfg m ~b ?recon ~dt ~state ~work ())
