(* A work-stealing double-ended queue: the owner pushes and pops at the
   bottom (LIFO, keeping its freshly-enabled tasks cache-hot), thieves
   take from the top (FIFO, taking the oldest — and in tiled programs
   the largest-distance — work).  A growable ring buffer under one
   mutex: the runtime's tasks are coarse enough that lock traffic is
   noise, and a blocking implementation keeps the memory model trivial
   on every backend OCaml multicore targets. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;  (* absolute index of the oldest element *)
  mutable tail : int;  (* absolute index one past the newest *)
  mu : Mutex.t;
}

let create () =
  { buf = Array.make 8 None; head = 0; tail = 0; mu = Mutex.create () }

let grow d =
  let cap = Array.length d.buf in
  let n = d.tail - d.head in
  let buf = Array.make (2 * cap) None in
  for i = 0 to n - 1 do
    buf.(i) <- d.buf.((d.head + i) mod cap)
  done;
  d.buf <- buf;
  d.head <- 0;
  d.tail <- n

let push_bottom d x =
  Mutex.lock d.mu;
  if d.tail - d.head = Array.length d.buf then grow d;
  let cap = Array.length d.buf in
  d.buf.(d.tail mod cap) <- Some x;
  d.tail <- d.tail + 1;
  Mutex.unlock d.mu

let pop_bottom d =
  Mutex.lock d.mu;
  let r =
    if d.tail = d.head then None
    else begin
      d.tail <- d.tail - 1;
      let k = d.tail mod Array.length d.buf in
      let x = d.buf.(k) in
      d.buf.(k) <- None;
      x
    end
  in
  Mutex.unlock d.mu;
  r

let steal_top d =
  Mutex.lock d.mu;
  let r =
    if d.tail = d.head then None
    else begin
      let k = d.head mod Array.length d.buf in
      let x = d.buf.(k) in
      d.buf.(k) <- None;
      d.head <- d.head + 1;
      x
    end
  in
  Mutex.unlock d.mu;
  r

let size d =
  Mutex.lock d.mu;
  let n = d.tail - d.head in
  Mutex.unlock d.mu;
  n
