(* Always-on counters (atomic increments, one per job / chunk batch)
   plus per-worker spans that only fire when a trace sink is set. *)
let m_jobs = Mpas_obs.Metrics.counter "par.pool.jobs"
let m_chunks = Mpas_obs.Metrics.counter "par.pool.chunks"

type chunked = {
  body : lo:int -> hi:int -> unit;
  lo : int;
  hi : int;
  chunk : int;
  n_chunks : int;
  next : int Atomic.t;
  completed : int Atomic.t;
}

(* A team job hands exactly one lane to each participating domain — the
   substrate of the task runtime's worker lanes.  [tnext] assigns lane
   ids, [tdone] counts finished lanes. *)
type team = {
  tbody : lane:int -> unit;
  tn : int;
  tnext : int Atomic.t;
  tdone : int Atomic.t;
}

type job = Chunked of chunked | Team of team

type t = {
  n_domains : int;
  mutex : Mutex.t;
  wake : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let run_chunks job =
  let traced = Mpas_obs.Trace.enabled () in
  let t0 = if traced then Mpas_obs.Trace.now () else 0. in
  let executed = ref 0 in
  let rec loop () =
    let k = Atomic.fetch_and_add job.next 1 in
    if k < job.n_chunks then begin
      let lo = job.lo + (k * job.chunk) in
      let hi = Int.min job.hi (lo + job.chunk) in
      job.body ~lo ~hi;
      incr executed;
      Atomic.incr job.completed;
      loop ()
    end
  in
  loop ();
  if !executed > 0 then begin
    Mpas_obs.Metrics.Counter.add m_chunks !executed;
    if traced then
      Mpas_obs.Trace.complete ~cat:"pool" ~t0
        ~args:[ ("chunks", string_of_int !executed) ]
        "pool.worker"
  end

(* Take exactly one lane of a team job.  Unlike chunked jobs, a domain
   never runs two lanes: each of the [tn] participants (workers plus the
   submitting caller) claims one distinct lane id, so lane bodies may
   block on each other without deadlocking. *)
let run_team_slot team =
  let k = Atomic.fetch_and_add team.tnext 1 in
  if k < team.tn then begin
    team.tbody ~lane:k;
    Atomic.incr team.tdone
  end

let run_job = function
  | Chunked j -> run_chunks j
  | Team team -> run_team_slot team

let worker t =
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while t.generation = !last_gen && not t.stop do
      Condition.wait t.wake t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      last_gen := t.generation;
      let job = t.job in
      Mutex.unlock t.mutex;
      (match job with Some j -> run_job j | None -> ());
      loop ()
    end
  in
  loop ()

let create ~n_domains =
  if n_domains < 1 then invalid_arg "Pool.create: n_domains must be >= 1";
  let t =
    {
      n_domains;
      mutex = Mutex.create ();
      wake = Condition.create ();
      job = None;
      generation = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (n_domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.n_domains

let default_chunk t ~lo ~hi =
  let n = hi - lo in
  (* Roughly 8 chunks per domain bounds scheduling overhead while
     keeping dynamic balance. *)
  Int.max 1 (n / (8 * t.n_domains))

let resolve_chunk t ~lo ~hi = function
  | None -> default_chunk t ~lo ~hi
  | Some c ->
      if c < 1 then invalid_arg "Pool: chunk must be >= 1";
      c

let parallel_for_chunks ?chunk t ~lo ~hi body =
  if hi > lo then begin
    Mpas_obs.Metrics.Counter.incr m_jobs;
    if t.n_domains = 1 then begin
      Mpas_obs.Metrics.Counter.incr m_chunks;
      body ~lo ~hi
    end
    else begin
      let chunk = resolve_chunk t ~lo ~hi chunk in
      let n_chunks = (hi - lo + chunk - 1) / chunk in
      let job =
        { body; lo; hi; chunk; n_chunks;
          next = Atomic.make 0; completed = Atomic.make 0 }
      in
      Mutex.lock t.mutex;
      t.job <- Some (Chunked job);
      t.generation <- t.generation + 1;
      Condition.broadcast t.wake;
      Mutex.unlock t.mutex;
      run_chunks job;
      (* The caller ran out of chunks; wait for stragglers. *)
      while Atomic.get job.completed < n_chunks do
        Domain.cpu_relax ()
      done
    end
  end

let run_team t body =
  Mpas_obs.Metrics.Counter.incr m_jobs;
  if t.n_domains = 1 then body ~lane:0
  else begin
    let team =
      { tbody = body; tn = t.n_domains;
        tnext = Atomic.make 0; tdone = Atomic.make 0 }
    in
    Mutex.lock t.mutex;
    t.job <- Some (Team team);
    t.generation <- t.generation + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    run_team_slot team;
    (* Wait for every lane: each domain claims exactly one, so the job
       only completes once all [tn] participants have run. *)
    while Atomic.get team.tdone < team.tn do
      Domain.cpu_relax ()
    done
  end

let parallel_for ?chunk t ~lo ~hi f =
  parallel_for_chunks ?chunk t ~lo ~hi (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        f i
      done)

let parallel_sum ?chunk t ~lo ~hi f =
  if hi <= lo then 0.
  else if t.n_domains = 1 then begin
    let acc = ref 0. in
    for i = lo to hi - 1 do
      acc := !acc +. f i
    done;
    !acc
  end
  else begin
    let chunk = resolve_chunk t ~lo ~hi chunk in
    let n_chunks = (hi - lo + chunk - 1) / chunk in
    let partials = Array.make n_chunks 0. in
    parallel_for_chunks ~chunk t ~lo ~hi (fun ~lo:clo ~hi:chi ->
        let k = (clo - lo) / chunk in
        let acc = ref 0. in
        for i = clo to chi - 1 do
          acc := !acc +. f i
        done;
        partials.(k) <- !acc);
    (* Combine in chunk order for determinism. *)
    Array.fold_left ( +. ) 0. partials
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~n_domains f =
  let t = create ~n_domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
