(** A work-stealing deque (owner end at the bottom, thief end at the
    top), safe for one owner and any number of concurrent thieves.

    The owner calls {!push_bottom} and {!pop_bottom} — LIFO, so the
    task it enabled last (whose data is hottest) runs next.  Thieves
    call {!steal_top} — FIFO, taking the oldest entry.  Implemented as
    a mutex-protected growable ring: every operation is linearizable,
    and the same element is never returned twice. *)

type 'a t

val create : unit -> 'a t

(** Owner: append at the bottom. *)
val push_bottom : 'a t -> 'a -> unit

(** Owner: take the youngest element, or [None] when empty. *)
val pop_bottom : 'a t -> 'a option

(** Thief: take the oldest element, or [None] when empty.  Safe to
    call from any domain, concurrently with the owner and other
    thieves. *)
val steal_top : 'a t -> 'a option

(** Snapshot of the current element count. *)
val size : 'a t -> int
