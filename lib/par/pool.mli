(** A small pool of worker domains with chunked parallel loops — the
    OpenMP-substitute substrate of the reproduction (DESIGN.md §3).

    The pool owns [n_domains - 1] persistent worker domains; the caller
    participates in every loop, so [n_domains = 1] degenerates to purely
    sequential execution with no spawned domains.

    Loops divide the index range into chunks handed out dynamically
    through an atomic counter, like an OpenMP [schedule(dynamic)]
    region.  Loop bodies must write disjoint locations for distinct
    indices — exactly the property the paper's regularity-aware loop
    refactoring establishes (Algorithm 3). *)

type t

(** [create ~n_domains] spawns the workers.  [n_domains >= 1]. *)
val create : n_domains:int -> t

(** Number of participating domains (workers + caller). *)
val size : t -> int

(** All loops accept [?chunk], the number of consecutive indices handed
    out per atomic-counter fetch.  The default, [(hi - lo) / (8 * size)],
    balances scheduling overhead against dynamic load balance; cheap
    point-wise loop bodies benefit from a larger chunk, expensive or
    skewed ones from a smaller.  [chunk < 1] raises [Invalid_argument]. *)

(** [parallel_for t ~lo ~hi f] runs [f i] for every [lo <= i < hi].
    Blocks until all iterations complete.  Must not be called
    re-entrantly from inside a loop body. *)
val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit

(** [parallel_for_chunks t ~lo ~hi f] hands out [f ~lo ~hi] on
    half-open sub-ranges; useful when per-chunk setup matters. *)
val parallel_for_chunks :
  ?chunk:int -> t -> lo:int -> hi:int -> (lo:int -> hi:int -> unit) -> unit

(** [parallel_sum t ~lo ~hi f] is [sum of f i for lo <= i < hi],
    computed with per-chunk partial sums combined {e in chunk order},
    so the result is deterministic for a fixed [lo], [hi], [chunk] and
    pool size regardless of thread scheduling. *)
val parallel_sum :
  ?chunk:int -> t -> lo:int -> hi:int -> (int -> float) -> float

(** [run_team t f] runs [f ~lane] once on every domain of the pool
    (workers plus the caller), with [lane] ranging over
    [0 .. size t - 1]; each domain executes exactly one lane, so lane
    bodies may coordinate with each other (locks, conditions, atomics)
    without deadlocking — the substrate of the task runtime's worker
    lanes ([Mpas_runtime.Exec]).  Blocks until every lane returns.
    Lane ids are claimed dynamically and are not stable across calls.
    Must not be called re-entrantly from inside a loop or lane body. *)
val run_team : t -> (lane:int -> unit) -> unit

(** Terminate the worker domains.  The pool must not be used after. *)
val shutdown : t -> unit

(** [with_pool ~n_domains f] creates a pool, runs [f], and always shuts
    the pool down. *)
val with_pool : n_domains:int -> (t -> 'a) -> 'a
