(** The shared abstraction of the three checkers: per-array read/write
    index sets with mesh-point typing.  A footprint maps concrete array
    slots (named ["state.h"], ["diag.ke"], ...) to the set of indices a
    task read and wrote in them. *)

open Mpas_patterns

(** Dense index sets over one mesh-point space. *)
module Iset : sig
  type t

  val create : int -> t
  val size : t -> int
  val cardinal : t -> int
  val mem : t -> int -> bool
  val add : t -> int -> unit
  val is_empty : t -> bool
  val is_full : t -> bool
  val inter_empty : t -> t -> bool
  val union : t -> t -> t
  val elements : t -> int list
  val of_list : int -> int list -> t

  (** ["none"], ["all"], or ["k/n"]. *)
  val summary : t -> string
end

type access = { point : Pattern.point; reads : Iset.t; writes : Iset.t }
type t

val create : unit -> t

(** The slot named [name], created empty on first use.
    @raise Invalid_argument if the slot exists with another point. *)
val slot : t -> name:string -> point:Pattern.point -> size:int -> access

val read : t -> name:string -> point:Pattern.point -> size:int -> int -> unit
val write : t -> name:string -> point:Pattern.point -> size:int -> int -> unit

(** Slots with at least one recorded access, sorted by name. *)
val slots : t -> (string * access) list

val find : t -> string -> access option

(** Per-slot union of reads and writes. *)
val union : t -> t -> t

type conflict_kind = Raw | War | Waw

val kind_name : conflict_kind -> string

type conflict = { array_ : string; kind : conflict_kind }

val conflict_name : conflict -> string

(** Hazards between two unordered accesses, named from the first
    argument's side: [Raw] = it writes cells the second reads, [War] =
    it reads cells the second writes, [Waw] = overlapping writes. *)
val conflicts : t -> t -> conflict list

val conflicting : t -> t -> bool

(** One line per slot, for reports. *)
val to_strings : t -> string list
