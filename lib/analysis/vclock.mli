(** Vector clocks over a fixed universe of components.

    {!Tsan} uses one component per {e task} of the monitored phase
    program, not one per lane: the happens-before relation under test
    is the DAG's acquire/release order only, and lane-indexed epochs
    would silently order any two tasks the scheduler happened to
    serialize on one lane — masking exactly the missing-edge bugs the
    detector exists to catch.  One component per task makes each
    component single-writer and the FastTrack-style epoch comparison an
    O(1) component read ({!observed}). *)

type t

val create : int -> t
(** All components zero. *)

val copy : t -> t
val size : t -> int
val get : t -> int -> int

val tick : t -> int -> unit
(** Increment one component in place. *)

val join : t -> t -> unit
(** [join a b] sets [a] to the elementwise max of [a] and [b].
    @raise Invalid_argument when the universes differ. *)

val leq : t -> t -> bool
(** Pointwise [<=] (the happens-before order on clocks). *)

val observed : t -> int -> bool
(** [observed v i]: has [v] acquired component [i]'s release?  The
    epoch test for single-writer components. *)

val to_string : t -> string
