(** Access inference by shadow instrumentation.

    Every registry instance is compiled through [Runtime.Bind] — the
    exact closures the task runtime schedules — and run against
    randomized shadow field arrays.  Writes are found by diffing two
    runs from two independent random bases; reads by poisoning one cell
    at a time with NaN and watching (bit-for-bit) whether any written
    cell changes.  The result is a {!Footprint} per task, diffed
    against the Table I declarations.

    Limitation: a read that influences no written cell (e.g. a branch
    producing identical values on both arms) is invisible to the probe;
    none of the registry kernels has that shape. *)

open Mpas_mesh
open Mpas_swe
open Mpas_patterns
open Mpas_runtime

type t

(** The configuration probing runs under: every conditional kernel
    enabled (nonzero [visc2] and [bottom_drag], fourth-order
    advection). *)
val probe_config : Config.t

(** Build a probe harness on [mesh] (a copy with a strict-subset
    boundary mask is used, so [X2] has real work).  Footprints are
    memoized per (instance, part, phase). *)
val create : ?config:Config.t -> Mesh.t -> t

(** The (masked) mesh the harness probes on. *)
val mesh : t -> Mesh.t

(** Inferred footprint of one task, as the runtime would execute it
    ([part = None] takes the CSR fast paths, [Some _] the ragged
    [?on] paths). *)
val task_footprint : t -> final:bool -> Spec.task -> Footprint.t

val instance_footprint :
  t -> final:bool -> part:(float * float) option -> Pattern.instance ->
  Footprint.t

(** Footprints aligned with [spec.early.tasks] and [spec.final.tasks];
    the schedule race detector's input. *)
val spec_footprints : t -> Spec.t -> Footprint.t array * Footprint.t array

(** How to drive the instance: [Csr] (full-range fast paths), [Ragged]
    (the [?on] reference paths over the full index set), or [Parts f]
    (two part tasks splitting at [f], footprints unioned). *)
type mode = Csr | Ragged | Parts of float

val mode_name : mode -> string

type violation =
  | Undeclared_read of string  (** slot read but not among the inputs *)
  | Undeclared_write of string  (** slot written but not among the outputs *)
  | Unread_input of string  (** declared input never read *)
  | Unwritten_output of string  (** declared output never written *)

val violation_message : violation -> string

type report = {
  r_instance : string;
  r_phase : [ `Early | `Final ];
  r_mode : mode;
  r_violations : violation list;
}

(** Diff one instance's inferred footprint against its declarations.
    A declared input that is also an output counts as read when the
    write covers a strict subset of the space (partial-write carry:
    the preserved complement is the dependency). *)
val check_instance :
  t -> final:bool -> mode:mode -> Pattern.instance -> violation list

val default_modes : mode list

(** Every instance of both runtime phases (early and final, the latter
    with the renamed diagnostics and the publishing accumulators) in
    every mode. *)
val check_registry : ?modes:mode list -> t -> report list

(** Diff a fused super-task's inferred footprint (the compiled
    super-kernel of [Bind], run as one body) against the {e union} of
    its members' Table I declarations, in chain order:

    - reads/writes of slots outside the union are undeclared;
    - every member's declared outputs must be written — a fusion that
      drops a member's write set is caught here;
    - a member input produced by an earlier member is {e internal}
      (register-carried), so reading the array is optional; external
      declared inputs must be read (partial-write carry as in
      {!check_instance}).

    Violations are tagged ["ID:var"].  Singleton lists degrade to the
    per-instance check.

    [body] (default: the members) is the chain actually compiled and
    probed — passing a different list seeds a planner bug, e.g.
    validating the declarations of [D1; C2; D2] against a body that
    only runs [D1; C2] must report [D2]'s output unwritten. *)
val check_fused :
  ?body:Pattern.instance list ->
  t -> final:bool -> mode:mode -> Pattern.instance list -> violation list

val default_fused_modes : mode list

(** [check_fused] over every chain the fusing planner actually builds
    ([Spec.build ~fuse:true]), both phases.  [r_instance] joins member
    ids with ["+"]. *)
val check_fused_spec : ?modes:mode list -> t -> report list

(** Reports with at least one violation. *)
val failed : report list -> report list
