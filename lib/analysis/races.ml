open Mpas_runtime

(* Schedule race detection, in two layers.

   Static: over a compiled phase program, build happens-before as
   reachability through the edge set and flag unordered task pairs
   whose inferred footprints conflict.  This re-derives the hazard
   edges Spec.build inserts from first principles — the footprints come
   from shadow instrumentation (Infer), not from the Table I
   declarations the spec was built from.

   Dynamic: replay an Exec log.  The executor's sequence counter gives
   a sound happens-before witness (a finished before b iff
   a.finish_seq < b.start_seq), so the replay can check that every
   spec edge was respected and that no conflicting pair actually
   overlapped. *)

(* --- static ------------------------------------------------------------- *)

(* reach.(b).(a) = task a provably precedes task b.  Edges go forward
   (pred index < task index, checked by Spec.check), so one pass in
   index order closes the relation. *)
let reachability (phase : Spec.phase) =
  let n = Array.length phase.Spec.tasks in
  let reach = Array.init n (fun _ -> Array.make n false) in
  Array.iter
    (fun (t : Spec.task) ->
      let row = reach.(t.Spec.index) in
      List.iter
        (fun p ->
          row.(p) <- true;
          Array.iteri (fun a before -> if before then row.(a) <- true)
            reach.(p))
        t.Spec.preds)
    phase.Spec.tasks;
  reach

type race = {
  ra : int;  (** lower task index *)
  rb : int;
  ra_instance : string;
  rb_instance : string;
  r_conflicts : Footprint.conflict list;  (** named from [ra]'s side *)
}

let race_message r =
  Printf.sprintf "tasks %d (%s) and %d (%s) unordered: %s" r.ra
    r.ra_instance r.rb r.rb_instance
    (String.concat ", " (List.map Footprint.conflict_name r.r_conflicts))

let instance_id (t : Spec.task) =
  t.Spec.instance.Mpas_patterns.Pattern.id

let check_phase ~(footprints : Footprint.t array) (phase : Spec.phase) =
  let n = Array.length phase.Spec.tasks in
  if Array.length footprints <> n then
    invalid_arg "Races.check_phase: footprints misaligned with tasks";
  let reach = reachability phase in
  let races = ref [] in
  for b = n - 1 downto 0 do
    for a = b - 1 downto 0 do
      if not reach.(b).(a) then
        match Footprint.conflicts footprints.(a) footprints.(b) with
        | [] -> ()
        | cs ->
            races :=
              {
                ra = a;
                rb = b;
                ra_instance = instance_id phase.Spec.tasks.(a);
                rb_instance = instance_id phase.Spec.tasks.(b);
                r_conflicts = cs;
              }
              :: !races
    done
  done;
  !races

let edges (phase : Spec.phase) =
  Array.to_list phase.Spec.tasks
  |> List.concat_map (fun (t : Spec.task) ->
         List.map (fun p -> (p, t.Spec.index)) t.Spec.preds)

(* A copy of [phase] with the src -> dst edge deleted — the mutation
   the tests use to prove the detector notices a missing hazard edge.
   Levels are left untouched; only the edge set matters here. *)
let drop_edge (phase : Spec.phase) ~src ~dst =
  let tasks =
    Array.map
      (fun (t : Spec.task) ->
        if t.Spec.index = dst then
          { t with Spec.preds = List.filter (( <> ) src) t.Spec.preds }
        else if t.Spec.index = src then
          { t with Spec.succs = List.filter (( <> ) dst) t.Spec.succs }
        else t)
      phase.Spec.tasks
  in
  { phase with Spec.tasks }

type phase_races = { pr_phase : [ `Early | `Final ]; pr_races : race list }

let check_spec ~early_footprints ~final_footprints (spec : Spec.t) =
  [
    {
      pr_phase = `Early;
      pr_races = check_phase ~footprints:early_footprints spec.Spec.early;
    };
    {
      pr_phase = `Final;
      pr_races = check_phase ~footprints:final_footprints spec.Spec.final;
    };
  ]

let spec_clean prs = List.for_all (fun pr -> pr.pr_races = []) prs

(* --- dynamic (log replay) ----------------------------------------------- *)

type issue =
  | Missing_task of { i_phase : [ `Early | `Final ]; substep : int; task : int }
  | Duplicate_task of {
      i_phase : [ `Early | `Final ];
      substep : int;
      task : int;
    }
  | Edge_unrespected of {
      i_phase : [ `Early | `Final ];
      substep : int;
      src : int;
      dst : int;
      src_instance : string;
      dst_instance : string;
      src_finish : int;  (** src's finish seq in the run *)
      dst_start : int;  (** dst's start seq — not after [src_finish] *)
    }
  | Concurrent_conflict of {
      i_phase : [ `Early | `Final ];
      substep : int;
      a : int;
      b : int;
      a_instance : string;
      b_instance : string;
      a_span : int * int;  (** a's (start, finish) seq interval *)
      b_span : int * int;
      conflicts : Footprint.conflict list;
    }

let phase_name = function `Early -> "early" | `Final -> "final"

let issue_message = function
  | Missing_task { i_phase; substep; task } ->
      Printf.sprintf "%s/substep %d: task %d never ran" (phase_name i_phase)
        substep task
  | Duplicate_task { i_phase; substep; task } ->
      Printf.sprintf "%s/substep %d: task %d ran more than once"
        (phase_name i_phase) substep task
  | Edge_unrespected
      { i_phase; substep; src; dst; src_instance; dst_instance; src_finish;
        dst_start } ->
      Printf.sprintf
        "%s/substep %d: edge %d (%s) -> %d (%s) not respected: src finished \
         at seq %d, dst started at seq %d"
        (phase_name i_phase) substep src src_instance dst dst_instance
        src_finish dst_start
  | Concurrent_conflict
      { i_phase; substep; a; b; a_instance; b_instance; a_span; b_span;
        conflicts } ->
      Printf.sprintf
        "%s/substep %d: tasks %d (%s, seq [%d,%d]) and %d (%s, seq [%d,%d]) \
         overlapped on %s"
        (phase_name i_phase) substep a a_instance (fst a_span) (snd a_span) b
        b_instance (fst b_span) (snd b_span)
        (String.concat ", " (List.map Footprint.conflict_name conflicts))

(* One (phase, substep) group of the log is one run_phase call: its
   sequence numbers are draws from that call's private counter, so
   interval comparisons are only meaningful within the group. *)
let check_group ~(spec : Spec.t) ~early_footprints ~final_footprints
    ((i_phase : [ `Early | `Final ]), substep)
    (entries : Exec.entry list) =
  let phase, footprints =
    match i_phase with
    | `Early -> (spec.Spec.early, early_footprints)
    | `Final -> (spec.Spec.final, final_footprints)
  in
  let n = Array.length phase.Spec.tasks in
  let issues = ref [] in
  let flag i = issues := i :: !issues in
  let by_task = Array.make n [] in
  List.iter
    (fun (e : Exec.entry) ->
      if e.Exec.e_task >= 0 && e.Exec.e_task < n then
        by_task.(e.Exec.e_task) <- e :: by_task.(e.Exec.e_task))
    entries;
  Array.iteri
    (fun task runs ->
      match runs with
      | [] -> flag (Missing_task { i_phase; substep; task })
      | [ _ ] -> ()
      | _ -> flag (Duplicate_task { i_phase; substep; task }))
    by_task;
  let entry task =
    match by_task.(task) with e :: _ -> Some e | [] -> None
  in
  let name i = instance_id phase.Spec.tasks.(i) in
  List.iter
    (fun (src, dst) ->
      match (entry src, entry dst) with
      | Some s, Some d ->
          if not (s.Exec.e_finish_seq < d.Exec.e_start_seq) then
            flag
              (Edge_unrespected
                 {
                   i_phase;
                   substep;
                   src;
                   dst;
                   src_instance = name src;
                   dst_instance = name dst;
                   src_finish = s.Exec.e_finish_seq;
                   dst_start = d.Exec.e_start_seq;
                 })
      | _ -> ())
    (edges phase);
  (* Conflicting pairs must not have overlapping [start, finish]
     sequence intervals: one of the two must provably finish first. *)
  for b = n - 1 downto 0 do
    for a = b - 1 downto 0 do
      match (entry a, entry b) with
      | Some ea, Some eb ->
          let ordered =
            ea.Exec.e_finish_seq < eb.Exec.e_start_seq
            || eb.Exec.e_finish_seq < ea.Exec.e_start_seq
          in
          if not ordered then (
            match Footprint.conflicts footprints.(a) footprints.(b) with
            | [] -> ()
            | conflicts ->
                flag
                  (Concurrent_conflict
                     {
                       i_phase;
                       substep;
                       a;
                       b;
                       a_instance = name a;
                       b_instance = name b;
                       a_span = (ea.Exec.e_start_seq, ea.Exec.e_finish_seq);
                       b_span = (eb.Exec.e_start_seq, eb.Exec.e_finish_seq);
                       conflicts;
                     }))
      | _ -> ()
    done
  done;
  List.rev !issues

(* The log has no step id and every run_phase call restarts its
   sequence counter, so a multi-step log cannot be split back into
   runs after the fact: callers drain the log once per model step.
   Within one step, each (phase, substep) key is exactly one
   run_phase call. *)
let check_log ~spec ~early_footprints ~final_footprints
    (entries : Exec.entry list) =
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (e : Exec.entry) ->
      let key = (e.Exec.e_phase, e.Exec.e_substep) in
      if not (Hashtbl.mem groups key) then order := key :: !order;
      Hashtbl.replace groups key
        (e :: (try Hashtbl.find groups key with Not_found -> [])))
    entries;
  List.concat_map
    (fun key ->
      check_group ~spec ~early_footprints ~final_footprints key
        (Hashtbl.find groups key))
    !order
