open Effect
open Effect.Deep

(* A bounded interleaving explorer in the dscheck mould, at model level.

   A model is a handful of cooperative threads whose every shared-state
   access goes through {!op}: the effect suspends the thread and hands
   the scheduler a label, an enabledness guard and the action itself,
   which runs only when the explorer picks that thread.  The explorer
   then enumerates schedules by depth-first search over choice traces —
   continuations are one-shot, so each schedule replays the model from
   a fresh state, which is also what makes exploration deterministic
   and replayable.

   Exploration is preemption-bounded (iterative context bounding):
   switching away from a thread that is still enabled costs one unit of
   a budget; switches forced by the current thread blocking or
   finishing are free.  Almost all real scheduler bugs — including
   every seeded bug in {!Models} — need at most one or two preemptions,
   so a small bound buys exhaustive coverage of the interesting
   interleavings at a tiny fraction of the full factorial space.

   Failure conditions the explorer itself detects:
   - deadlock: not every thread finished, none is enabled;
   - a final-state check returning an error after a complete schedule;
   - an exception escaping model code.
   The failing schedule is reported as its op-label trace. *)

type _ Effect.t +=
  | Step : string * (unit -> bool) * (unit -> 'a) -> 'a Effect.t

let op ?(guard = fun () -> true) label action =
  perform (Step (label, guard, action))

type model = {
  m_name : string;
  m_make : unit -> (string * (unit -> unit)) list * (unit -> string option);
}

type status =
  | Finished
  | Blocked of { label : string; guard : unit -> bool; run : unit -> status }

let start (body : unit -> unit) : status =
  match_with body ()
    {
      retc = (fun () -> Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Step (label, guard, action) ->
              Some
                (fun (k : (a, status) continuation) ->
                  Blocked
                    { label; guard; run = (fun () -> continue k (action ())) })
          | _ -> None);
    }

type outcome = {
  oc_model : string;
  oc_schedules : int;  (** complete schedules explored *)
  oc_truncated : bool;  (** hit max_schedules or max_steps *)
  oc_error : string option;  (** first violation found, if any *)
  oc_trace : string list;  (** the failing schedule, as op labels *)
}

let outcome_message o =
  match o.oc_error with
  | None ->
      Printf.sprintf "%s: %d schedules clean%s" o.oc_model o.oc_schedules
        (if o.oc_truncated then " (truncated)" else "")
  | Some e ->
      Printf.sprintf "%s: %s\n  after %d schedules; trace: %s" o.oc_model e
        o.oc_schedules
        (String.concat " " o.oc_trace)

let run ?(preemption_bound = 2) ?(max_schedules = 200_000) ?(max_steps = 400)
    model =
  let schedules = ref 0 in
  let truncated = ref false in
  let error = ref None in
  let fail rev_trace msg =
    if !error = None then error := Some (msg, List.rev rev_trace)
  in
  let advance names sts rev_trace c =
    match sts.(c) with
    | Blocked b ->
        let rev_trace = (names.(c) ^ "/" ^ b.label) :: rev_trace in
        let failed =
          try
            sts.(c) <- b.run ();
            None
          with e -> Some (Printexc.to_string e)
        in
        (rev_trace, failed)
    | Finished -> invalid_arg "Explore.run: scheduled a finished thread"
  in
  (* Rebuild fresh state and replay a choice prefix (stored newest
     first); one-shot continuations make this the only way to
     backtrack.  The DFS hands live state straight to its first child,
     so only second-and-later siblings pay for a replay. *)
  let replay prefix =
    let threads, check = model.m_make () in
    let names = Array.of_list (List.map fst threads) in
    let sts = Array.of_list (List.map (fun (_, b) -> start b) threads) in
    let rec steps choices rev_trace =
      match choices with
      | [] -> (rev_trace, None)
      | c :: rest -> (
          let rev_trace, failed = advance names sts rev_trace c in
          match failed with
          | Some _ -> (rev_trace, failed)
          | None -> steps rest rev_trace)
    in
    let rev_trace, failed = steps (List.rev prefix) [] in
    (names, sts, check, rev_trace, failed)
  in
  let rec go prefix live last preemptions depth =
    if !error <> None || !truncated then ()
    else if !schedules >= max_schedules || depth > max_steps then
      truncated := true
    else
      let names, sts, check, rev_trace, failed =
        match live with Some s -> s | None -> replay prefix
      in
      match failed with
      | Some msg ->
          incr schedules;
          fail rev_trace ("exception in model: " ^ msg)
      | None ->
          let enabled = ref [] and asleep = ref [] in
          for i = Array.length sts - 1 downto 0 do
            match sts.(i) with
            | Finished -> ()
            | Blocked b ->
                if b.guard () then enabled := i :: !enabled
                else asleep := (names.(i) ^ "/" ^ b.label) :: !asleep
          done;
          if !enabled = [] && !asleep = [] then begin
            incr schedules;
            match check () with None -> () | Some msg -> fail rev_trace msg
          end
          else if !enabled = [] then begin
            incr schedules;
            fail rev_trace
              ("deadlock: every live thread is blocked ("
              ^ String.concat ", " !asleep
              ^ ")")
          end
          else begin
            let fresh = ref true in
            List.iter
              (fun c ->
                let cost =
                  match last with
                  | Some l when l <> c && List.mem l !enabled -> 1
                  | _ -> 0
                in
                if
                  preemptions + cost <= preemption_bound
                  && !error = None
                  && not !truncated
                then begin
                  let live' =
                    if !fresh then begin
                      fresh := false;
                      let rt, fl = advance names sts rev_trace c in
                      Some (names, sts, check, rt, fl)
                    end
                    else None
                  in
                  go (c :: prefix) live' (Some c) (preemptions + cost)
                    (depth + 1)
                end)
              !enabled
          end
  in
  go [] None None 0 0;
  {
    oc_model = model.m_name;
    oc_schedules = !schedules;
    oc_truncated = !truncated;
    oc_error = Option.map fst !error;
    oc_trace = (match !error with Some (_, t) -> t | None -> []);
  }

(* ------------------------------------------------------------------ *)

module Models = struct
  type deque_bug = Drop_last_cas
  type steal_bug = Drop_version_check | Drop_spread_broadcast | Drop_retire_broadcast
  type exec_bug = Drop_enable_signal

  (* The Chase-Lev deque at CAS granularity: owner pushes and pops the
     bottom, a thief steals the top; owner and thief contend on the
     last element and the CAS on [top] is the arbiter.  The seeded bug
     removes that CAS from the owner's last-element path (the
     "drop a fence" test): both sides can then take the same value.
     The final check is conservation — every pushed value is taken
     exactly once or still resident, never duplicated, never lost. *)
  let chase_lev ?bug () =
    let name =
      match bug with
      | None -> "chase-lev"
      | Some Drop_last_cas -> "chase-lev!drop-last-cas"
    in
    let make () =
      let top = ref 0 and bottom = ref 0 in
      let buf = Array.make 8 (-1) in
      let taken = ref [] in
      let push v =
        op "push" (fun () ->
            buf.(!bottom) <- v;
            incr bottom)
      in
      let cas_top t label =
        op label (fun () ->
            if !top = t then begin
              top := t + 1;
              true
            end
            else false)
      in
      let pop () =
        let b =
          op "pop:decr-bottom" (fun () ->
              decr bottom;
              !bottom)
        in
        let t = op "pop:read-top" (fun () -> !top) in
        if b < t then begin
          op "pop:restore" (fun () -> bottom := t);
          None
        end
        else if b > t then Some (op "pop:take" (fun () -> buf.(b)))
        else begin
          (* last element: race the thief for index [t] *)
          let won =
            match bug with
            | Some Drop_last_cas -> op "pop:take-unfenced" (fun () -> true)
            | None -> cas_top t "pop:cas-top"
          in
          let v = if won then Some buf.(b) else None in
          op "pop:restore" (fun () -> bottom := t + 1);
          v
        end
      in
      let steal () =
        let t = op "steal:read-top" (fun () -> !top) in
        let b = op "steal:read-bottom" (fun () -> !bottom) in
        if t >= b then None
        else if cas_top t "steal:cas-top" then Some buf.(t)
        else None
      in
      let take src = function
        | Some v -> taken := (v, src) :: !taken
        | None -> ()
      in
      let owner () =
        push 0;
        push 1;
        take "owner" (pop ());
        take "owner" (pop ())
      in
      let thief () = take "thief" (steal ()) in
      let check () =
        let err = ref None in
        for v = 0 to 1 do
          let got =
            List.filter (fun (w, _) -> w = v) !taken |> List.length
          in
          let resident = if !top <= v && v < !bottom then 1 else 0 in
          let total = got + resident in
          if total <> 1 && !err = None then
            err :=
              Some
                (Printf.sprintf
                   "value %d taken %d times, resident %d (expected exactly \
                    once overall)"
                   v got resident)
        done;
        !err
      in
      ([ ("owner", owner); ("thief", thief) ], check)
    in
    { m_name = name; m_make = make }

  (* The steal-mode wakeup protocol over a 3-task, 2-class phase
     program (host -> device -> host): per-lane deques, same-class
     stealing, a global version counter + sleepers counter standing in
     for the condvar, and the stingy signal gated on sleepers.  Lanes
     0,1 are host, lane 2 is device; cross-class enables are spread to
     the target class's lane 0.

     Seeded bugs:
     - [Drop_version_check]: read the wakeup version {e after} the
       final emptiness re-check instead of before — the classic lost
       wakeup window;
     - [Drop_spread_broadcast]: a cross-class spread does not signal,
       so a sleeping device lane never learns of its new task;
     - [Drop_retire_broadcast]: the final retire does not signal, so
       lanes asleep at termination never wake to exit.
     Each manifests as an explorer-detected deadlock; the correct
     protocol is clean across every schedule within the bound. *)
  let steal_wakeup ?bug () =
    let name =
      match bug with
      | None -> "steal-wakeup"
      | Some Drop_version_check -> "steal-wakeup!drop-version-check"
      | Some Drop_spread_broadcast -> "steal-wakeup!drop-spread-broadcast"
      | Some Drop_retire_broadcast -> "steal-wakeup!drop-retire-broadcast"
    in
    let n_tasks = 3 in
    let cls = [| `H; `D; `H |] in
    let succs = [| [ 1 ]; [ 2 ]; [] |] in
    let lanes = [| `H; `H; `D |] in
    let home = function `H -> 0 | `D -> 2 in
    let make () =
      let deques = Array.make 3 [] in
      let retired = Array.make n_tasks false in
      let n_retired = ref 0 in
      let version = ref 0 and sleepers = ref 0 in
      let runs = ref [] in
      let signal label =
        op label (fun () -> if !sleepers > 0 then incr version)
      in
      let push l t = deques.(l) <- deques.(l) @ [ t ] in
      let pop l =
        match deques.(l) with
        | [] -> None
        | t :: rest ->
            deques.(l) <- rest;
            Some t
      in
      let peers l =
        List.filter (fun p -> p <> l && lanes.(p) = lanes.(l)) [ 0; 1; 2 ]
      in
      let stealable l =
        List.exists (fun p -> deques.(p) <> []) (peers l)
      in
      let retire lane t =
        op
          (Printf.sprintf "run-t%d" t)
          (fun () ->
            retired.(t) <- true;
            incr n_retired;
            runs := (t, lane) :: !runs);
        List.iter
          (fun s ->
            (* chain: the single pred just retired, so [s] is ready *)
            if cls.(s) = lanes.(lane) then
              op (Printf.sprintf "push-own-t%d" s) (fun () -> push lane s)
            else begin
              op
                (Printf.sprintf "spread-t%d" s)
                (fun () -> push (home cls.(s)) s);
              if bug <> Some Drop_spread_broadcast then signal "spread-signal"
            end)
          succs.(t);
        let final = op "check-final" (fun () -> !n_retired = n_tasks) in
        if final && bug <> Some Drop_retire_broadcast then
          signal "retire-signal"
      in
      let sleep lane =
        op "sleepers++" (fun () -> incr sleepers);
        let wait_from v =
          op "wait" ~guard:(fun () -> !version > v) (fun () -> ());
          op "sleepers--" (fun () -> decr sleepers)
        in
        let recheck () =
          op "recheck" (fun () ->
              !n_retired = n_tasks || deques.(lane) <> [] || stealable lane)
        in
        match bug with
        | Some Drop_version_check ->
            (* version sampled after the emptiness check: a push+signal
               landing in between is lost *)
            if op "recheck" (fun () ->
                   !n_retired = n_tasks || deques.(lane) <> []
                   || stealable lane)
            then op "sleepers--" (fun () -> decr sleepers)
            else wait_from (op "read-version" (fun () -> !version))
        | _ ->
            let v = op "read-version" (fun () -> !version) in
            if recheck () then op "sleepers--" (fun () -> decr sleepers)
            else wait_from v
      in
      let lane_body lane () =
        let rec loop () =
          if op "check-done" (fun () -> !n_retired = n_tasks) then ()
          else begin
            (match op "pop-own" (fun () -> pop lane) with
            | Some t -> retire lane t
            | None -> (
                let stolen =
                  op "steal" (fun () ->
                      let rec try_peers = function
                        | [] -> None
                        | p :: rest -> (
                            match pop p with
                            | Some t -> Some t
                            | None -> try_peers rest)
                      in
                      try_peers (peers lane))
                in
                match stolen with
                | Some t -> retire lane t
                | None -> sleep lane));
            loop ()
          end
        in
        loop ()
      in
      let check () =
        let err = ref None in
        let set m = if !err = None then err := Some m in
        for t = 0 to n_tasks - 1 do
          let r = List.filter (fun (u, _) -> u = t) !runs in
          (match r with
          | [ (_, lane) ] ->
              if lanes.(lane) <> cls.(t) then
                set
                  (Printf.sprintf "task %d ran on a lane of the wrong class"
                     t)
          | [] -> set (Printf.sprintf "task %d never ran" t)
          | _ ->
              set
                (Printf.sprintf "task %d ran %d times" t (List.length r)))
        done;
        !err
      in
      (* seed: t0 in its home deque *)
      push (home cls.(0)) 0;
      ( [ ("h0", lane_body 0); ("h1", lane_body 1); ("d0", lane_body 2) ],
        check )
    in
    { m_name = name; m_make = make }

  (* The shared-queue executor (run_parallel's shape): workers pull
     ready tasks from one queue, retiring pushes the successors and
     signals.  The seeded bug drops that signal, so a worker that went
     to sleep before the last retire never wakes to run the enabled
     task or to observe termination — a deadlock the explorer finds. *)
  let async_exec ?bug () =
    let name =
      match bug with
      | None -> "async-exec"
      | Some Drop_enable_signal -> "async-exec!drop-enable-signal"
    in
    let n_tasks = 2 in
    let succs = [| [ 1 ]; [] |] in
    let make () =
      let ready = ref [ 0 ] in
      let n_retired = ref 0 in
      let version = ref 0 and sleepers = ref 0 in
      let runs = ref [] in
      let worker w () =
        let rec loop () =
          if op "check-done" (fun () -> !n_retired = n_tasks) then ()
          else begin
            (match
               op "pop" (fun () ->
                   match !ready with
                   | [] -> None
                   | t :: rest ->
                       ready := rest;
                       Some t)
             with
            | Some t ->
                op
                  (Printf.sprintf "run-t%d" t)
                  (fun () ->
                    incr n_retired;
                    runs := (t, w) :: !runs;
                    ready := !ready @ succs.(t));
                if bug <> Some Drop_enable_signal then
                  op "signal" (fun () ->
                      if !sleepers > 0 then incr version)
            | None ->
                op "sleepers++" (fun () -> incr sleepers);
                let v = op "read-version" (fun () -> !version) in
                if
                  op "recheck" (fun () ->
                      !n_retired = n_tasks || !ready <> [])
                then op "sleepers--" (fun () -> decr sleepers)
                else begin
                  op "wait" ~guard:(fun () -> !version > v) (fun () -> ());
                  op "sleepers--" (fun () -> decr sleepers)
                end);
            loop ()
          end
        in
        loop ()
      in
      let check () =
        let err = ref None in
        for t = 0 to n_tasks - 1 do
          let r = List.length (List.filter (fun (u, _) -> u = t) !runs) in
          if r <> 1 && !err = None then
            err := Some (Printf.sprintf "task %d ran %d times" t r)
        done;
        !err
      in
      ([ ("w0", worker 0); ("w1", worker 1) ], check)
    in
    { m_name = name; m_make = make }
end
