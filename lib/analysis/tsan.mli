open Mpas_runtime

(** Online race detection for live executor runs.

    A monitor attaches to {!Exec.set_sanitizer} and checks the schedule
    {e as it executes}: happens-before is derived from the spec's DAG
    edges only (acquire the predecessors' release clocks at task begin,
    publish a release clock at task end — {!Vclock}), and every
    retiring task's declared footprint is checked against a per-slot
    shadow state of earlier unordered accesses.

    Unlike log replay ({!Races.check_log}), which trusts the seq
    numbers the scheduler itself emitted, the monitor sees a
    predecessor's release {e missing} at acquire time when the
    scheduler starts a task early ({!constructor-Early_start}) — the
    deque / lost-wakeup bug class replay legitimizes.  Conversely it
    also reports conflicting task pairs the schedule merely happened to
    serialize (same lane, 1-core box): racy by luck is still racy. *)

type race = {
  rc_phase : [ `Early | `Final ];
  rc_substep : int;
  rc_slot : string;  (** conflicting array / slot name *)
  rc_a : int;  (** task index retired first *)
  rc_b : int;
  rc_a_instance : string;
  rc_b_instance : string;
  rc_a_lane : int;
  rc_b_lane : int;
  rc_kind : Footprint.conflict_kind;  (** named from [rc_a]'s side *)
}

type violation =
  | Race of race
      (** two DAG-unordered tasks with intersecting conflicting index
          sets on one slot *)
  | Early_start of {
      es_phase : [ `Early | `Final ];
      es_substep : int;
      es_pred : int;
      es_task : int;
      es_lane : int;
    }
      (** [es_task] began before predecessor [es_pred] released — a
          scheduler bug, caught at the moment it happens *)
  | Shape_mismatch of {
      sm_phase : [ `Early | `Final ];
      sm_substep : int;
      sm_expected : int;
      sm_got : int;
    }
      (** the executed phase does not match the monitored spec; its
          tasks are skipped rather than mis-attributed *)

val violation_message : violation -> string

type t

val create :
  spec:Spec.t ->
  early_footprints:Footprint.t array ->
  final_footprints:Footprint.t array ->
  unit ->
  t
(** Footprints must align with the spec's phase task arrays (as
    returned by {!Infer.spec_footprints} on the same spec).
    @raise Invalid_argument on length mismatch. *)

val sanitizer : t -> Exec.sanitizer
(** The hook to install with {!Exec.set_sanitizer}.  Thread-safe; one
    monitor can watch any number of consecutive phase runs of specs
    structurally identical to the monitored one. *)

val with_monitor : t -> (unit -> 'a) -> 'a
(** [with_monitor t f] installs the sanitizer, runs [f], and always
    clears the hook.  Install/remove only between phase runs. *)

val violations : t -> violation list
(** Everything flagged so far, oldest first.  Empty after a monitored
    run means: every conflicting pair was DAG-ordered {e and} the
    scheduler respected every edge at runtime. *)

val phase_runs : t -> int
(** Phase runs observed (2 per early substep + 1 final per step). *)

val tasks_seen : t -> int
(** Task executions checked across all monitored runs. *)
