open Mpas_runtime
open Mpas_patterns

(* FastTrack-style online race detection at task granularity.

   The monitor attaches to [Exec]'s sanitizer hook and checks the
   schedule as it executes, deriving happens-before ONLY from the
   spec's DAG edges: a task's clock is the join of its predecessors'
   release clocks plus its own fresh component (Vclock — one component
   per task, see that module for why not per lane).  The shadow state
   is one record list per named slot, carrying each finished task's
   declared read/write index sets; a pair races when neither clock
   observed the other, the access kinds conflict, and the index sets
   intersect.

   Two properties fall out of deriving HB from edges alone:

   - a scheduler that starts a task before a predecessor retired shows
     up immediately as [Early_start] (the release is missing at
     acquire time) — the lost-wakeup / deque-bug class that a
     seq-numbered log produced by the same buggy scheduler can
     legitimize;
   - two conflicting tasks with no DAG path between them are reported
     even when the schedule happened to serialize them (same lane, or
     a 1-core box): "raced by luck" is still a program bug.

   All callbacks serialize on one mutex; phase runs never overlap (one
   orchestrator calls run_phase), so a single current-phase state is
   enough and [san_phase_begin] is a full reset. *)

type race = {
  rc_phase : [ `Early | `Final ];
  rc_substep : int;
  rc_slot : string;
  rc_a : int;
  rc_b : int;
  rc_a_instance : string;
  rc_b_instance : string;
  rc_a_lane : int;
  rc_b_lane : int;
  rc_kind : Footprint.conflict_kind;
}

type violation =
  | Race of race
  | Early_start of {
      es_phase : [ `Early | `Final ];
      es_substep : int;
      es_pred : int;
      es_task : int;
      es_lane : int;
    }
  | Shape_mismatch of {
      sm_phase : [ `Early | `Final ];
      sm_substep : int;
      sm_expected : int;
      sm_got : int;
    }

let phase_name = function `Early -> "early" | `Final -> "final"

let violation_message = function
  | Race r ->
      Printf.sprintf "%s/substep %d: tasks %d (%s, lane %d) and %d (%s, lane %d) race on %s (%s)"
        (phase_name r.rc_phase) r.rc_substep r.rc_a r.rc_a_instance r.rc_a_lane
        r.rc_b r.rc_b_instance r.rc_b_lane r.rc_slot
        (Footprint.kind_name r.rc_kind)
  | Early_start { es_phase; es_substep; es_pred; es_task; es_lane } ->
      Printf.sprintf
        "%s/substep %d: task %d started on lane %d before predecessor %d \
         released"
        (phase_name es_phase) es_substep es_task es_lane es_pred
  | Shape_mismatch { sm_phase; sm_substep; sm_expected; sm_got } ->
      Printf.sprintf
        "%s/substep %d: phase has %d tasks but the monitored spec has %d"
        (phase_name sm_phase) sm_substep sm_got sm_expected

(* One finished task's accesses to one slot. *)
type record_ = {
  sh_task : int;
  sh_lane : int;
  sh_kind : [ `R | `W ];
  sh_iset : Footprint.Iset.t;
}

type t = {
  mu : Mutex.t;
  spec : Spec.t;
  efp : Footprint.t array;
  ffp : Footprint.t array;
  (* current phase run *)
  mutable cur_phase : [ `Early | `Final ];
  mutable cur_substep : int;
  mutable cur_ok : bool;  (** false after a shape mismatch: skip tasks *)
  mutable release : Vclock.t option array;
  mutable clocks : Vclock.t option array;
  mutable lanes_of : int array;
  shadow : (string, record_ list ref) Hashtbl.t;
  mutable violations : violation list;
  mutable phase_runs : int;
  mutable tasks_seen : int;
}

let create ~spec ~early_footprints ~final_footprints () =
  let check name (phase : Spec.phase) fps =
    if Array.length fps <> Array.length phase.Spec.tasks then
      invalid_arg ("Tsan.create: " ^ name ^ " footprints misaligned")
  in
  check "early" spec.Spec.early early_footprints;
  check "final" spec.Spec.final final_footprints;
  {
    mu = Mutex.create ();
    spec;
    efp = early_footprints;
    ffp = final_footprints;
    cur_phase = `Early;
    cur_substep = 0;
    cur_ok = false;
    release = [||];
    clocks = [||];
    lanes_of = [||];
    shadow = Hashtbl.create 32;
    violations = [];
    phase_runs = 0;
    tasks_seen = 0;
  }

let flag t v = t.violations <- v :: t.violations

let phase_tasks t =
  (match t.cur_phase with
  | `Early -> t.spec.Spec.early
  | `Final -> t.spec.Spec.final)
    .Spec.tasks

let footprints t = match t.cur_phase with `Early -> t.efp | `Final -> t.ffp

let phase_begin t ~phase ~substep ~n_tasks =
  Mutex.lock t.mu;
  t.cur_phase <- phase;
  t.cur_substep <- substep;
  t.phase_runs <- t.phase_runs + 1;
  let expected = Array.length (phase_tasks t) in
  if n_tasks <> expected then begin
    t.cur_ok <- false;
    flag t
      (Shape_mismatch
         {
           sm_phase = phase;
           sm_substep = substep;
           sm_expected = expected;
           sm_got = n_tasks;
         })
  end
  else begin
    t.cur_ok <- true;
    t.release <- Array.make n_tasks None;
    t.clocks <- Array.make n_tasks None;
    t.lanes_of <- Array.make n_tasks 0;
    Hashtbl.reset t.shadow
  end;
  Mutex.unlock t.mu

(* Acquire: join the predecessors' release clocks, then tick our own
   component.  A missing release means the scheduler let us start
   early; flag it and continue with the partial clock (the dropped
   ordering then surfaces as shadow races too). *)
let task_begin t ~task ~lane =
  Mutex.lock t.mu;
  if t.cur_ok && task >= 0 && task < Array.length t.clocks then begin
    let tasks = phase_tasks t in
    let v = Vclock.create (Array.length tasks) in
    List.iter
      (fun p ->
        match t.release.(p) with
        | Some r -> Vclock.join v r
        | None ->
            flag t
              (Early_start
                 {
                   es_phase = t.cur_phase;
                   es_substep = t.cur_substep;
                   es_pred = p;
                   es_task = task;
                   es_lane = lane;
                 }))
      tasks.(task).Spec.preds;
    Vclock.tick v task;
    t.clocks.(task) <- Some v;
    t.lanes_of.(task) <- lane;
    t.tasks_seen <- t.tasks_seen + 1
  end;
  Mutex.unlock t.mu

let conflict_kind (a : [ `R | `W ]) (b : [ `R | `W ]) =
  (* named from [a]'s side, matching Footprint.conflicts *)
  match (a, b) with
  | `W, `R -> Some Footprint.Raw
  | `R, `W -> Some Footprint.War
  | `W, `W -> Some Footprint.Waw
  | `R, `R -> None

(* Release: check this task's declared footprint against every
   recorded access not ordered before us, record our own accesses,
   publish the release clock.  Records are appended at task end under
   the monitor mutex, so of any two racing tasks the one released
   later always sees the other's records — no overlap is missed. *)
let task_end t ~task ~lane =
  ignore lane;
  Mutex.lock t.mu;
  (if t.cur_ok && task >= 0 && task < Array.length t.clocks then
     match t.clocks.(task) with
     | None -> ()
     | Some v ->
         let tasks = phase_tasks t in
         let fp = (footprints t).(task) in
         let instance i = tasks.(i).Spec.instance.Pattern.id in
         List.iter
           (fun (slot, (a : Footprint.access)) ->
             let records =
               match Hashtbl.find_opt t.shadow slot with
               | Some r -> r
               | None ->
                   let r = ref [] in
                   Hashtbl.add t.shadow slot r;
                   r
             in
             let mine =
               List.filter
                 (fun (_, s) -> not (Footprint.Iset.is_empty s))
                 [ (`R, a.Footprint.reads); (`W, a.Footprint.writes) ]
             in
             List.iter
               (fun (r : record_) ->
                 if not (Vclock.observed v r.sh_task) then
                   List.iter
                     (fun (kind, iset) ->
                       match conflict_kind r.sh_kind kind with
                       | Some ck
                         when not (Footprint.Iset.inter_empty r.sh_iset iset)
                         ->
                           flag t
                             (Race
                                {
                                  rc_phase = t.cur_phase;
                                  rc_substep = t.cur_substep;
                                  rc_slot = slot;
                                  rc_a = r.sh_task;
                                  rc_b = task;
                                  rc_a_instance = instance r.sh_task;
                                  rc_b_instance = instance task;
                                  rc_a_lane = r.sh_lane;
                                  rc_b_lane = t.lanes_of.(task);
                                  rc_kind = ck;
                                })
                       | _ -> ())
                     mine)
               !records;
             List.iter
               (fun (kind, iset) ->
                 records :=
                   { sh_task = task; sh_lane = t.lanes_of.(task);
                     sh_kind = kind; sh_iset = iset }
                   :: !records)
               mine)
           (Footprint.slots fp);
         t.release.(task) <- Some v);
  Mutex.unlock t.mu

let sanitizer t =
  {
    Exec.san_phase_begin = (fun ~phase ~substep ~n_tasks ->
        phase_begin t ~phase ~substep ~n_tasks);
    san_task_begin = (fun ~task ~lane -> task_begin t ~task ~lane);
    san_task_end = (fun ~task ~lane -> task_end t ~task ~lane);
    san_phase_end = (fun () -> ());
  }

let violations t =
  Mutex.lock t.mu;
  let v = List.rev t.violations in
  Mutex.unlock t.mu;
  v

let phase_runs t = t.phase_runs
let tasks_seen t = t.tasks_seen

let with_monitor t f =
  Exec.set_sanitizer (Some (sanitizer t));
  Fun.protect ~finally:(fun () -> Exec.set_sanitizer None) f
