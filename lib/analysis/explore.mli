(** Bounded interleaving exploration (dscheck/DPOR-style, model level).

    Models are cooperative threads whose shared-state accesses all go
    through {!op}; the explorer enumerates thread interleavings by
    depth-first search over choice traces, replaying the model from
    fresh state per schedule, up to a preemption bound (switching away
    from a still-enabled thread spends budget; forced switches are
    free).  It detects deadlocks, failed final-state checks, and
    escaped exceptions, and reports the failing schedule as a label
    trace.

    {!Models} holds shim-level models of the runtime's concurrency
    protocols — the Chase-Lev deque and the steal/stingy-wakeup
    protocol — each with seeded-bug variants (a dropped fence, skipped
    wakeup signals) that the explorer must catch; the unseeded models
    are proven exactly-once and deadlock-free over every schedule
    within the bound. *)

val op : ?guard:(unit -> bool) -> string -> (unit -> 'a) -> 'a
(** [op label action] is one atomic step of a model thread: the thread
    suspends, and [action] runs when the explorer schedules this
    thread.  [guard] is the enabledness condition (a pure read of model
    state); a thread whose pending op is disabled blocks until some
    other thread's action makes the guard true.  Only call from inside
    a model body. *)

type model = {
  m_name : string;
  m_make : unit -> (string * (unit -> unit)) list * (unit -> string option);
      (** fresh state per schedule: named thread bodies plus a
          final-state check returning [Some error] on violation *)
}

type outcome = {
  oc_model : string;
  oc_schedules : int;  (** complete schedules explored *)
  oc_truncated : bool;  (** hit max_schedules or max_steps *)
  oc_error : string option;  (** first violation found, if any *)
  oc_trace : string list;  (** the failing schedule, as op labels *)
}

val outcome_message : outcome -> string

val run :
  ?preemption_bound:int ->
  ?max_schedules:int ->
  ?max_steps:int ->
  model ->
  outcome
(** Explore every schedule within [preemption_bound] (default 2).
    Deterministic: no randomness, schedules enumerated in a fixed
    order.  [oc_truncated] means the caps cut exploration short and a
    clean result is not a proof. *)

module Models : sig
  type deque_bug = Drop_last_cas
      (** owner's last-element pop takes without the CAS on [top] *)

  type steal_bug =
    | Drop_version_check
        (** sample the wakeup version after the emptiness re-check:
            the classic lost-wakeup window *)
    | Drop_spread_broadcast
        (** cross-class spread without a signal: the sleeping target
            lane never learns of its task *)
    | Drop_retire_broadcast
        (** final retire without a signal: lanes asleep at termination
            never exit *)

  type exec_bug = Drop_enable_signal
      (** retiring drops the successor/termination signal *)

  val chase_lev : ?bug:deque_bug -> unit -> model
  (** Owner (2 pushes, 2 pops) vs one thief at CAS granularity; the
      check is conservation: each value taken exactly once or still
      resident. *)

  val steal_wakeup : ?bug:steal_bug -> unit -> model
  (** Three lanes in two classes running a host->device->host task
      chain over per-lane deques with same-class stealing and the
      version/sleepers stingy-wakeup protocol; the check is
      exactly-once, class-correct execution, and the explorer proves
      no lost wakeup (no deadlock) for the unseeded protocol. *)

  val async_exec : ?bug:exec_bug -> unit -> model
  (** Two workers over one shared ready queue (run_parallel's shape). *)
end
