(** Bounds auditor for the unsafe-indexed CSR fast paths.

    Every [Array.unsafe_get/set] site in [Mpas_swe.Operators]'s CSR
    kernels (and [Mpas_patterns.Refactor.edge_to_cell_csr]) is
    catalogued with the shape of its index expression.  Each shape
    yields proof obligations — CSR invariants such as offset
    monotonicity, in-range connectivity entries, and exact table
    lengths — that are discharged against {!Mesh.Csr.validate}: a clean
    validation proves every unsafe index in bounds.

    Caller-provided field arrays are covered by the [check_len] guards
    at kernel entry; those appear as explicit [Guarded_len]
    assumptions on the verdict rather than CSR invariants.

    The member-batched ensemble kernels of [Mpas_swe.Strided] are
    catalogued the same way (kernel names prefixed ["strided."]):
    their panelled slab accesses
    [(m / bw) * size * bw + inner * bw + (m mod bw)] lean on the
    [check_slab] entry guard for the panel base ([Slab_guard]
    assumption) while
    the inner index discharges the usual CSR obligations, and the
    per-member mask/parameter/flag reads are covered by the
    [check_range]/[check_params]/[check_flags] guards
    ([Member_guard]). *)

open Mpas_mesh

type space = Cells | Edges | Vertices

val space_name : space -> string
val space_size : Mesh.t -> space -> int

(** Index-expression shapes.  The loop variable ranges over the site's
    loop space. *)
type index =
  | Iter
  | Iter_next
  | Row of string
  | Stride of int
  | Loaded of { table : string; space : space }
  | Loaded_stride of { table : string; space : space; width : int }
  | Member  (** the member loop variable of a strided kernel *)
  | Slab of index
      (** panel base + inner index into a panelled (AoSoA) slab *)

val index_name : index -> string

type array_class = Csr_offsets | Csr_table | Geometry | Field

type site = {
  s_kernel : string;
  s_array : string;
  s_class : array_class;
  s_access : [ `Get | `Set ];
  s_index : index;
  s_loop : space;
}

val site_name : site -> string

type invariant =
  | Offsets_shape_ok of { offsets : string; rows : space }
  | Flat_covered_ok of { data : string; offsets : string }
  | In_range_ok of { table : string; space : space }
  | Strided_ok of { table : string; space : space; width : int }
  | Sized_ok of { table : string; space : space }
  | Guarded_len of { field : string; space : space }
  | Slab_guard of { slab : string; space : space }
  | Member_guard of { array : string }

val invariant_name : invariant -> string
val is_assumption : invariant -> bool

(** The full unsafe-site catalog (one entry may stand for a small
    unrolled group, e.g. the three strided kite slots). *)
val catalog : site list

(** What must hold for [site]'s index to be in bounds. *)
val obligations : site -> invariant list

type verdict =
  | Proved of { assumptions : invariant list }
  | Refuted of invariant list

type site_report = {
  sr_site : site;
  sr_obligations : invariant list;
  sr_verdict : verdict;
}

(** Discharge every site against [Mesh.Csr.validate m csr].  [csr]
    defaults to the mesh's own (valid) view; tests pass corrupted
    copies to watch obligations fail. *)
val audit : ?csr:Mesh.csr -> Mesh.t -> site_report list

val refuted : site_report list -> site_report list

(** {1 Self-audit: coverage}

    The static audit proves what the catalog {e says}; the self-audit
    checks the catalog itself.  {!coverage} interprets each entry's
    index shape over a live mesh, enumerating the concrete indices the
    kernel would touch and checking them against the bound the
    obligations promise — an entry with zero hits or an unresolvable
    array name is dead weight ({!cv_dead}), usually stale after a
    kernel change. *)

type coverage = {
  cv_site : site;
  cv_hits : int;  (** concrete indices enumerated on this mesh *)
  cv_oob : int;  (** of those, how many fell outside the bound *)
  cv_problem : string option;
      (** a name that did not resolve, or an unusable shape *)
}

val cv_dead : coverage -> bool
val coverage_message : coverage -> string

val coverage :
  ?bw:int ->
  ?mhi:int ->
  ?csr:Mesh.csr ->
  ?sites:site list ->
  Mesh.t ->
  coverage list
(** [bw]/[mhi] (default 2/4) are nominal panel width and member count
    for the strided shapes.  [sites] defaults to the full {!catalog};
    tests pass doctored lists to watch the self-audit fire. *)

(** {1 Self-audit: source scan}

    The other direction: scan the kernel sources for
    [Array.unsafe_get/set] occurrences, attribute each to its enclosing
    top-level function, resolve local aliases to catalog names, and
    diff the (kernel, array, access) key sets both ways.  Keys ignore
    the index shape — the catalog is shape-level, one entry may stand
    for a small unrolled group. *)

type scan_site = {
  sc_kernel : string;
  sc_array : string;
  sc_access : [ `Get | `Set ];
  sc_line : int;
}

val scan_site_name : scan_site -> string

val scan_file : prefix:string -> string -> scan_site list
(** All unsafe sites of one source file, kernel names prefixed with
    [prefix] (["strided."], ["fused."], or [""]). *)

val default_sources : root:string -> (string * string) list
(** The kernel sources the catalog covers, as (prefix, path) pairs
    relative to the repository root. *)

type scan_gap =
  | Uncatalogued of scan_site
      (** an unsafe access in the source with no catalog entry *)
  | Unscanned of site
      (** a catalog entry no source site matches — stale *)

val scan_gap_message : scan_gap -> string

val scan_audit : sources:(string * string) list -> site list -> scan_gap list
(** Diff the scanned sources against a catalog (normally {!catalog});
    empty means every unsafe site is catalogued and every entry is
    live in the source. *)
