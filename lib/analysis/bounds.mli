(** Bounds auditor for the unsafe-indexed CSR fast paths.

    Every [Array.unsafe_get/set] site in [Mpas_swe.Operators]'s CSR
    kernels (and [Mpas_patterns.Refactor.edge_to_cell_csr]) is
    catalogued with the shape of its index expression.  Each shape
    yields proof obligations — CSR invariants such as offset
    monotonicity, in-range connectivity entries, and exact table
    lengths — that are discharged against {!Mesh.Csr.validate}: a clean
    validation proves every unsafe index in bounds.

    Caller-provided field arrays are covered by the [check_len] guards
    at kernel entry; those appear as explicit [Guarded_len]
    assumptions on the verdict rather than CSR invariants.

    The member-batched ensemble kernels of [Mpas_swe.Strided] are
    catalogued the same way (kernel names prefixed ["strided."]):
    their panelled slab accesses
    [(m / bw) * size * bw + inner * bw + (m mod bw)] lean on the
    [check_slab] entry guard for the panel base ([Slab_guard]
    assumption) while
    the inner index discharges the usual CSR obligations, and the
    per-member mask/parameter/flag reads are covered by the
    [check_range]/[check_params]/[check_flags] guards
    ([Member_guard]). *)

open Mpas_mesh

type space = Cells | Edges | Vertices

val space_name : space -> string
val space_size : Mesh.t -> space -> int

(** Index-expression shapes.  The loop variable ranges over the site's
    loop space. *)
type index =
  | Iter
  | Iter_next
  | Row of string
  | Stride of int
  | Loaded of { table : string; space : space }
  | Loaded_stride of { table : string; space : space; width : int }
  | Member  (** the member loop variable of a strided kernel *)
  | Slab of index
      (** panel base + inner index into a panelled (AoSoA) slab *)

val index_name : index -> string

type array_class = Csr_offsets | Csr_table | Geometry | Field

type site = {
  s_kernel : string;
  s_array : string;
  s_class : array_class;
  s_access : [ `Get | `Set ];
  s_index : index;
  s_loop : space;
}

val site_name : site -> string

type invariant =
  | Offsets_shape_ok of { offsets : string; rows : space }
  | Flat_covered_ok of { data : string; offsets : string }
  | In_range_ok of { table : string; space : space }
  | Strided_ok of { table : string; space : space; width : int }
  | Sized_ok of { table : string; space : space }
  | Guarded_len of { field : string; space : space }
  | Slab_guard of { slab : string; space : space }
  | Member_guard of { array : string }

val invariant_name : invariant -> string
val is_assumption : invariant -> bool

(** The full unsafe-site catalog (one entry may stand for a small
    unrolled group, e.g. the three strided kite slots). *)
val catalog : site list

(** What must hold for [site]'s index to be in bounds. *)
val obligations : site -> invariant list

type verdict =
  | Proved of { assumptions : invariant list }
  | Refuted of invariant list

type site_report = {
  sr_site : site;
  sr_obligations : invariant list;
  sr_verdict : verdict;
}

(** Discharge every site against [Mesh.Csr.validate m csr].  [csr]
    defaults to the mesh's own (valid) view; tests pass corrupted
    copies to watch obligations fail. *)
val audit : ?csr:Mesh.csr -> Mesh.t -> site_report list

val refuted : site_report list -> site_report list
