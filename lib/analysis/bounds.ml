open Mpas_mesh

(* The unsafe-indexed CSR fast paths, as data: every
   [Array.unsafe_get/set] in Mpas_swe.Operators (and
   Mpas_patterns.Refactor.edge_to_cell_csr) is catalogued with the
   shape of its index expression, and each shape is discharged against
   the typed CSR invariants of [Mesh.Csr.validate].  The fast paths
   thereby carry a machine-checked justification: if [validate] is
   clean, every unsafe index is in bounds. *)

type space = Cells | Edges | Vertices

let space_name = function
  | Cells -> "cells"
  | Edges -> "edges"
  | Vertices -> "vertices"

let space_size (m : Mesh.t) = function
  | Cells -> m.Mesh.n_cells
  | Edges -> m.Mesh.n_edges
  | Vertices -> m.Mesh.n_vertices

(* The index expression shapes the fast paths use.  The loop variable
   ranges over the kernel's loop space. *)
type index =
  | Iter  (** the loop variable itself *)
  | Iter_next  (** loop variable + 1 (upper row bound fetch) *)
  | Row of string  (** packed position j in [offsets.(i), offsets.(i+1)) *)
  | Stride of int  (** width * loop variable + k, k < width *)
  | Loaded of { table : string; space : space }
      (** a connectivity value loaded from [table], indexing an array
          over [space] *)
  | Loaded_stride of { table : string; space : space; width : int }
      (** width * (value loaded from [table]) + k, k < width *)

let index_name = function
  | Iter -> "i"
  | Iter_next -> "i+1"
  | Row offs -> Printf.sprintf "j in %s row" offs
  | Stride w -> Printf.sprintf "%d*i+k" w
  | Loaded { table; _ } -> Printf.sprintf "%s[.]" table
  | Loaded_stride { table; width; _ } ->
      Printf.sprintf "%d*%s[.]+k" width table

type array_class =
  | Csr_offsets  (** a row-offsets table of the CSR view *)
  | Csr_table  (** a flat CSR data table *)
  | Geometry  (** a mesh geometry array *)
  | Field  (** a caller-provided field, length-guarded at kernel entry *)

type site = {
  s_kernel : string;
  s_array : string;
  s_class : array_class;
  s_access : [ `Get | `Set ];
  s_index : index;
  s_loop : space;
}

(* What must hold for the site's index to be in bounds. *)
type invariant =
  | Offsets_shape_ok of { offsets : string; rows : space }
      (** offsets has rows+1 entries, starts at 0, monotone *)
  | Flat_covered_ok of { data : string; offsets : string }
      (** offsets well-shaped and [offsets.(rows) = length data] *)
  | In_range_ok of { table : string; space : space }
      (** every entry of [table] is in [0, size space) *)
  | Strided_ok of { table : string; space : space; width : int }
      (** [length table = width * size space] *)
  | Sized_ok of { table : string; space : space }
      (** geometry array has exactly [size space] entries *)
  | Guarded_len of { field : string; space : space }
      (** runtime [check_len] guard at kernel entry: field length is at
          least the space size — an assumption, not a CSR invariant *)

let invariant_name = function
  | Offsets_shape_ok { offsets; rows } ->
      Printf.sprintf "%s well-shaped over %s" offsets (space_name rows)
  | Flat_covered_ok { data; offsets } ->
      Printf.sprintf "%s covered by %s" data offsets
  | In_range_ok { table; space } ->
      Printf.sprintf "%s entries in [0, #%s)" table (space_name space)
  | Strided_ok { table; space; width } ->
      Printf.sprintf "%s has %d entries per %s" table width
        (space_name space)
  | Sized_ok { table; space } ->
      Printf.sprintf "%s sized to %s" table (space_name space)
  | Guarded_len { field; space } ->
      Printf.sprintf "check_len guard: %s covers %s" field (space_name space)

let is_assumption = function Guarded_len _ -> true | _ -> false

(* Obligations per index shape.  The loaded-value obligations pair the
   range of the connectivity entries with the size of the array they
   index. *)
let obligations (s : site) =
  let target_sized space =
    match s.s_class with
    | Geometry -> [ Sized_ok { table = s.s_array; space } ]
    | Field -> [ Guarded_len { field = s.s_array; space } ]
    | Csr_offsets -> [ Offsets_shape_ok { offsets = s.s_array; rows = space } ]
    | Csr_table ->
        invalid_arg
          ("Bounds: CSR table " ^ s.s_array ^ " indexed by a loaded value")
  in
  match s.s_index with
  | Iter | Iter_next -> (
      match s.s_class with
      | Csr_offsets ->
          [ Offsets_shape_ok { offsets = s.s_array; rows = s.s_loop } ]
      | Geometry -> [ Sized_ok { table = s.s_array; space = s.s_loop } ]
      | Field -> [ Guarded_len { field = s.s_array; space = s.s_loop } ]
      | Csr_table ->
          invalid_arg ("Bounds: CSR table " ^ s.s_array ^ " indexed by i"))
  | Row offsets ->
      [
        Offsets_shape_ok { offsets; rows = s.s_loop };
        Flat_covered_ok { data = s.s_array; offsets };
      ]
  | Stride width ->
      [ Strided_ok { table = s.s_array; space = s.s_loop; width } ]
  | Loaded { table; space } -> In_range_ok { table; space } :: target_sized space
  | Loaded_stride { table; space; width } ->
      [
        In_range_ok { table; space };
        Strided_ok { table = s.s_array; space; width };
      ]

(* --- the catalog -------------------------------------------------------- *)

let site kernel loop array_ cls access index =
  {
    s_kernel = kernel;
    s_array = array_;
    s_class = cls;
    s_access = access;
    s_index = index;
    s_loop = loop;
  }

(* Shared shapes of the cell-row kernels: walk a cell's packed row. *)
let cell_row k tables =
  site k Cells "cell_offsets" Csr_offsets `Get Iter
  :: site k Cells "cell_offsets" Csr_offsets `Get Iter_next
  :: List.map
       (fun t -> site k Cells t Csr_table `Get (Row "cell_offsets"))
       tables

let eoe_row k tables =
  site k Edges "eoe_offsets" Csr_offsets `Get Iter
  :: site k Edges "eoe_offsets" Csr_offsets `Get Iter_next
  :: List.map
       (fun t -> site k Edges t Csr_table `Get (Row "eoe_offsets"))
       tables

let via k loop field table space =
  site k loop field Field `Get (Loaded { table; space })

let via_geom k loop g table space =
  site k loop g Geometry `Get (Loaded { table; space })

let catalog =
  List.concat
    [
      (* Operators.kinetic_energy *)
      cell_row "kinetic_energy" [ "cell_edges" ];
      [
        via "kinetic_energy" Cells "u" "cell_edges" Edges;
        via_geom "kinetic_energy" Cells "dc_edge" "cell_edges" Edges;
        via_geom "kinetic_energy" Cells "dv_edge" "cell_edges" Edges;
        site "kinetic_energy" Cells "area_cell" Geometry `Get Iter;
        site "kinetic_energy" Cells "out" Field `Set Iter;
      ];
      (* Operators.divergence *)
      cell_row "divergence" [ "cell_edges"; "cell_edge_signs" ];
      [
        via "divergence" Cells "u" "cell_edges" Edges;
        via_geom "divergence" Cells "dv_edge" "cell_edges" Edges;
        site "divergence" Cells "area_cell" Geometry `Get Iter;
        site "divergence" Cells "out" Field `Set Iter;
      ];
      (* Operators.vorticity *)
      [
        site "vorticity" Vertices "vertex_edges" Csr_table `Get (Stride 3);
        site "vorticity" Vertices "vertex_edge_signs" Csr_table `Get (Stride 3);
        via "vorticity" Vertices "u" "vertex_edges" Edges;
        via_geom "vorticity" Vertices "dc_edge" "vertex_edges" Edges;
        site "vorticity" Vertices "area_triangle" Geometry `Get Iter;
        site "vorticity" Vertices "out" Field `Set Iter;
      ];
      (* Operators.h_vertex *)
      [
        site "h_vertex" Vertices "vertex_cells" Csr_table `Get (Stride 3);
        site "h_vertex" Vertices "vertex_kite_areas" Csr_table `Get (Stride 3);
        via "h_vertex" Vertices "h" "vertex_cells" Cells;
        site "h_vertex" Vertices "area_triangle" Geometry `Get Iter;
        site "h_vertex" Vertices "out" Field `Set Iter;
      ];
      (* Operators.pv_cell: the kite lookup loads a vertex id from the
         cell row, then walks that vertex's three slots. *)
      cell_row "pv_cell" [ "cell_vertices" ];
      [
        site "pv_cell" Cells "vertex_cells" Csr_table `Get
          (Loaded_stride { table = "cell_vertices"; space = Vertices; width = 3 });
        site "pv_cell" Cells "vertex_kite_areas" Csr_table `Get
          (Loaded_stride { table = "cell_vertices"; space = Vertices; width = 3 });
        via "pv_cell" Cells "pv_vertex" "cell_vertices" Vertices;
        site "pv_cell" Cells "area_cell" Geometry `Get Iter;
        site "pv_cell" Cells "out" Field `Set Iter;
      ];
      (* Operators.tangential_velocity *)
      eoe_row "tangential_velocity" [ "eoe_edges"; "eoe_weights" ];
      [
        via "tangential_velocity" Edges "u" "eoe_edges" Edges;
        site "tangential_velocity" Edges "out" Field `Set Iter;
      ];
      (* Operators.tend_h *)
      cell_row "tend_h" [ "cell_edges"; "cell_edge_signs" ];
      [
        via "tend_h" Cells "h_edge" "cell_edges" Edges;
        via "tend_h" Cells "u" "cell_edges" Edges;
        via_geom "tend_h" Cells "dv_edge" "cell_edges" Edges;
        site "tend_h" Cells "area_cell" Geometry `Get Iter;
        site "tend_h" Cells "out" Field `Set Iter;
      ];
      (* Operators.tend_u *)
      eoe_row "tend_u" [ "eoe_edges"; "eoe_weights" ];
      [
        site "tend_u" Edges "pv_edge" Field `Get Iter;
        via "tend_u" Edges "pv_edge" "eoe_edges" Edges;
        via "tend_u" Edges "u" "eoe_edges" Edges;
        via "tend_u" Edges "h_edge" "eoe_edges" Edges;
        site "tend_u" Edges "edge_cells" Csr_table `Get (Stride 2);
        via "tend_u" Edges "h" "edge_cells" Cells;
        via "tend_u" Edges "b" "edge_cells" Cells;
        via "tend_u" Edges "ke" "edge_cells" Cells;
        site "tend_u" Edges "dc_edge" Geometry `Get Iter;
        site "tend_u" Edges "out" Field `Set Iter;
      ];
      (* Operators.tracer_edge *)
      [
        site "tracer_edge" Edges "edge_cells" Csr_table `Get (Stride 2);
        via "tracer_edge" Edges "tracer" "edge_cells" Cells;
        site "tracer_edge" Edges "u" Field `Get Iter;
        site "tracer_edge" Edges "out" Field `Set Iter;
      ];
      (* Operators.tend_tracer *)
      cell_row "tend_tracer" [ "cell_edges"; "cell_edge_signs" ];
      [
        via "tend_tracer" Cells "h_edge" "cell_edges" Edges;
        via "tend_tracer" Cells "tracer_edge" "cell_edges" Edges;
        via "tend_tracer" Cells "u" "cell_edges" Edges;
        via_geom "tend_tracer" Cells "dv_edge" "cell_edges" Edges;
        site "tend_tracer" Cells "area_cell" Geometry `Get Iter;
        site "tend_tracer" Cells "out" Field `Set Iter;
      ];
      (* Operators.velocity_laplacian *)
      [
        site "velocity_laplacian" Edges "edge_cells" Csr_table `Get (Stride 2);
        site "velocity_laplacian" Edges "edge_vertices" Csr_table `Get
          (Stride 2);
        via "velocity_laplacian" Edges "divergence" "edge_cells" Cells;
        via "velocity_laplacian" Edges "vorticity" "edge_vertices" Vertices;
        site "velocity_laplacian" Edges "dc_edge" Geometry `Get Iter;
        site "velocity_laplacian" Edges "dv_edge" Geometry `Get Iter;
        site "velocity_laplacian" Edges "out" Field `Set Iter;
      ];
      (* Refactor.edge_to_cell_csr *)
      cell_row "edge_to_cell_csr" [ "cell_edge_signs"; "cell_edges" ];
      [
        via "edge_to_cell_csr" Cells "x" "cell_edges" Edges;
        site "edge_to_cell_csr" Cells "y" Field `Set Iter;
      ];
    ]

(* --- discharging -------------------------------------------------------- *)

type verdict =
  | Proved of { assumptions : invariant list }
  | Refuted of invariant list

type site_report = {
  sr_site : site;
  sr_obligations : invariant list;
  sr_verdict : verdict;
}

let holds (errors : Mesh.Csr.error list) inv =
  let table_clean ~pred t =
    not (List.exists (fun e -> pred e && Mesh.Csr.error_table e = Some t) errors)
  in
  let offsets_clean o =
    table_clean o
      ~pred:(function
        | Mesh.Csr.Offsets_shape _ | Mesh.Csr.Row_width _ -> true
        | _ -> false)
  in
  let length_clean t =
    table_clean t
      ~pred:(function Mesh.Csr.Length_mismatch _ -> true | _ -> false)
  in
  match inv with
  | Offsets_shape_ok { offsets; _ } -> offsets_clean offsets
  | Flat_covered_ok { data; offsets } ->
      offsets_clean offsets && length_clean data
  | In_range_ok { table; _ } ->
      table_clean table
        ~pred:(function Mesh.Csr.Out_of_range _ -> true | _ -> false)
  | Strided_ok { table; _ } | Sized_ok { table; _ } -> length_clean table
  | Guarded_len _ -> true

let audit_site errors s =
  let obl = obligations s in
  let failing = List.filter (fun inv -> not (holds errors inv)) obl in
  let verdict =
    if failing = [] then
      Proved { assumptions = List.filter is_assumption obl }
    else Refuted failing
  in
  { sr_site = s; sr_obligations = obl; sr_verdict = verdict }

let audit ?csr (m : Mesh.t) =
  let csr = match csr with Some c -> c | None -> Mesh.csr m in
  let errors = Mesh.Csr.validate m csr in
  List.map (audit_site errors) catalog

let refuted reports =
  List.filter
    (fun r -> match r.sr_verdict with Refuted _ -> true | _ -> false)
    reports

let site_name s =
  Printf.sprintf "%s: %s %s[%s]" s.s_kernel
    (match s.s_access with `Get -> "get" | `Set -> "set")
    s.s_array (index_name s.s_index)
