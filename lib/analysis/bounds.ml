open Mpas_mesh

(* The unsafe-indexed CSR fast paths, as data: every
   [Array.unsafe_get/set] in Mpas_swe.Operators (and
   Mpas_patterns.Refactor.edge_to_cell_csr) is catalogued with the
   shape of its index expression, and each shape is discharged against
   the typed CSR invariants of [Mesh.Csr.validate].  The fast paths
   thereby carry a machine-checked justification: if [validate] is
   clean, every unsafe index is in bounds. *)

type space = Cells | Edges | Vertices

let space_name = function
  | Cells -> "cells"
  | Edges -> "edges"
  | Vertices -> "vertices"

let space_size (m : Mesh.t) = function
  | Cells -> m.Mesh.n_cells
  | Edges -> m.Mesh.n_edges
  | Vertices -> m.Mesh.n_vertices

(* The index expression shapes the fast paths use.  The loop variable
   ranges over the kernel's loop space. *)
type index =
  | Iter  (** the loop variable itself *)
  | Iter_next  (** loop variable + 1 (upper row bound fetch) *)
  | Row of string  (** packed position j in [offsets.(i), offsets.(i+1)) *)
  | Stride of int  (** width * loop variable + k, k < width *)
  | Loaded of { table : string; space : space }
      (** a connectivity value loaded from [table], indexing an array
          over [space] *)
  | Loaded_stride of { table : string; space : space; width : int }
      (** width * (value loaded from [table]) + k, k < width *)
  | Member  (** the member loop variable of a strided kernel *)
  | Slab of index
      (** panel base + inner index into a panelled (AoSoA) slab:
          [(m / bw) * size(space) * bw + inner * bw + (m mod bw)] *)

let rec index_name = function
  | Iter -> "i"
  | Iter_next -> "i+1"
  | Row offs -> Printf.sprintf "j in %s row" offs
  | Stride w -> Printf.sprintf "%d*i+k" w
  | Loaded { table; _ } -> Printf.sprintf "%s[.]" table
  | Loaded_stride { table; width; _ } ->
      Printf.sprintf "%d*%s[.]+k" width table
  | Member -> "m"
  | Slab inner -> Printf.sprintf "panel(m)+%s*bw" (index_name inner)

type array_class =
  | Csr_offsets  (** a row-offsets table of the CSR view *)
  | Csr_table  (** a flat CSR data table *)
  | Geometry  (** a mesh geometry array *)
  | Field  (** a caller-provided field, length-guarded at kernel entry *)

type site = {
  s_kernel : string;
  s_array : string;
  s_class : array_class;
  s_access : [ `Get | `Set ];
  s_index : index;
  s_loop : space;
}

(* What must hold for the site's index to be in bounds. *)
type invariant =
  | Offsets_shape_ok of { offsets : string; rows : space }
      (** offsets has rows+1 entries, starts at 0, monotone *)
  | Flat_covered_ok of { data : string; offsets : string }
      (** offsets well-shaped and [offsets.(rows) = length data] *)
  | In_range_ok of { table : string; space : space }
      (** every entry of [table] is in [0, size space) *)
  | Strided_ok of { table : string; space : space; width : int }
      (** [length table = width * size space] *)
  | Sized_ok of { table : string; space : space }
      (** geometry array has exactly [size space] entries *)
  | Guarded_len of { field : string; space : space }
      (** runtime [check_len] guard at kernel entry: field length is at
          least the space size — an assumption, not a CSR invariant *)
  | Slab_guard of { slab : string; space : space }
      (** runtime [Strided.check_slab] guard at kernel entry: the slab
          holds at least [mhi * size space] entries, so every member
          base [m * size space] with [m < mhi] leaves a full stride in
          bounds — an assumption, like [Guarded_len] *)
  | Member_guard of { array : string }
      (** runtime [Strided.check_range]/[check_params]/[check_flags]
          guard: the per-member array covers members [[0, mhi)] — an
          assumption *)

let invariant_name = function
  | Offsets_shape_ok { offsets; rows } ->
      Printf.sprintf "%s well-shaped over %s" offsets (space_name rows)
  | Flat_covered_ok { data; offsets } ->
      Printf.sprintf "%s covered by %s" data offsets
  | In_range_ok { table; space } ->
      Printf.sprintf "%s entries in [0, #%s)" table (space_name space)
  | Strided_ok { table; space; width } ->
      Printf.sprintf "%s has %d entries per %s" table width
        (space_name space)
  | Sized_ok { table; space } ->
      Printf.sprintf "%s sized to %s" table (space_name space)
  | Guarded_len { field; space } ->
      Printf.sprintf "check_len guard: %s covers %s" field (space_name space)
  | Slab_guard { slab; space } ->
      Printf.sprintf "check_slab guard: %s covers members x %s" slab
        (space_name space)
  | Member_guard { array } ->
      Printf.sprintf "member guard: %s covers the member range" array

let is_assumption = function
  | Guarded_len _ | Slab_guard _ | Member_guard _ -> true
  | _ -> false

(* Obligations per index shape.  The loaded-value obligations pair the
   range of the connectivity entries with the size of the array they
   index. *)
let obligations (s : site) =
  let target_sized space =
    match s.s_class with
    | Geometry -> [ Sized_ok { table = s.s_array; space } ]
    | Field -> [ Guarded_len { field = s.s_array; space } ]
    | Csr_offsets -> [ Offsets_shape_ok { offsets = s.s_array; rows = space } ]
    | Csr_table ->
        invalid_arg
          ("Bounds: CSR table " ^ s.s_array ^ " indexed by a loaded value")
  in
  match s.s_index with
  | Iter | Iter_next -> (
      match s.s_class with
      | Csr_offsets ->
          [ Offsets_shape_ok { offsets = s.s_array; rows = s.s_loop } ]
      | Geometry -> [ Sized_ok { table = s.s_array; space = s.s_loop } ]
      | Field -> [ Guarded_len { field = s.s_array; space = s.s_loop } ]
      | Csr_table ->
          invalid_arg ("Bounds: CSR table " ^ s.s_array ^ " indexed by i"))
  | Row offsets ->
      [
        Offsets_shape_ok { offsets; rows = s.s_loop };
        Flat_covered_ok { data = s.s_array; offsets };
      ]
  | Stride width ->
      [ Strided_ok { table = s.s_array; space = s.s_loop; width } ]
  | Loaded { table; space } -> In_range_ok { table; space } :: target_sized space
  | Loaded_stride { table; space; width } ->
      [
        In_range_ok { table; space };
        Strided_ok { table = s.s_array; space; width };
      ]
  | Member -> [ Member_guard { array = s.s_array } ]
  | Slab inner ->
      (* The member base is covered by the slab guard; the inner index
         must itself be in [0, size space) for the guarded stride. *)
      let space, inner_obl =
        match inner with
        | Iter -> (s.s_loop, [])
        | Loaded { table; space } -> (space, [ In_range_ok { table; space } ])
        | _ ->
            invalid_arg
              ("Bounds: slab " ^ s.s_array ^ " with unsupported inner index")
      in
      Slab_guard { slab = s.s_array; space } :: inner_obl

(* --- the catalog -------------------------------------------------------- *)

let site kernel loop array_ cls access index =
  {
    s_kernel = kernel;
    s_array = array_;
    s_class = cls;
    s_access = access;
    s_index = index;
    s_loop = loop;
  }

(* Shared shapes of the cell-row kernels: walk a cell's packed row. *)
let cell_row k tables =
  site k Cells "cell_offsets" Csr_offsets `Get Iter
  :: site k Cells "cell_offsets" Csr_offsets `Get Iter_next
  :: List.map
       (fun t -> site k Cells t Csr_table `Get (Row "cell_offsets"))
       tables

let eoe_row k tables =
  site k Edges "eoe_offsets" Csr_offsets `Get Iter
  :: site k Edges "eoe_offsets" Csr_offsets `Get Iter_next
  :: List.map
       (fun t -> site k Edges t Csr_table `Get (Row "eoe_offsets"))
       tables

let via k loop field table space =
  site k loop field Field `Get (Loaded { table; space })

let via_geom k loop g table space =
  site k loop g Geometry `Get (Loaded { table; space })

let catalog =
  List.concat
    [
      (* Operators.kinetic_energy *)
      cell_row "kinetic_energy" [ "cell_edges" ];
      [
        via "kinetic_energy" Cells "u" "cell_edges" Edges;
        via_geom "kinetic_energy" Cells "dc_edge" "cell_edges" Edges;
        via_geom "kinetic_energy" Cells "dv_edge" "cell_edges" Edges;
        site "kinetic_energy" Cells "area_cell" Geometry `Get Iter;
        site "kinetic_energy" Cells "out" Field `Set Iter;
      ];
      (* Operators.divergence *)
      cell_row "divergence" [ "cell_edges"; "cell_edge_signs" ];
      [
        via "divergence" Cells "u" "cell_edges" Edges;
        via_geom "divergence" Cells "dv_edge" "cell_edges" Edges;
        site "divergence" Cells "area_cell" Geometry `Get Iter;
        site "divergence" Cells "out" Field `Set Iter;
      ];
      (* Operators.vorticity *)
      [
        site "vorticity" Vertices "vertex_edges" Csr_table `Get (Stride 3);
        site "vorticity" Vertices "vertex_edge_signs" Csr_table `Get (Stride 3);
        via "vorticity" Vertices "u" "vertex_edges" Edges;
        via_geom "vorticity" Vertices "dc_edge" "vertex_edges" Edges;
        site "vorticity" Vertices "area_triangle" Geometry `Get Iter;
        site "vorticity" Vertices "out" Field `Set Iter;
      ];
      (* Operators.h_vertex *)
      [
        site "h_vertex" Vertices "vertex_cells" Csr_table `Get (Stride 3);
        site "h_vertex" Vertices "vertex_kite_areas" Csr_table `Get (Stride 3);
        via "h_vertex" Vertices "h" "vertex_cells" Cells;
        site "h_vertex" Vertices "area_triangle" Geometry `Get Iter;
        site "h_vertex" Vertices "out" Field `Set Iter;
      ];
      (* Operators.pv_cell: the kite lookup loads a vertex id from the
         cell row, then walks that vertex's three slots. *)
      cell_row "pv_cell" [ "cell_vertices" ];
      [
        site "pv_cell" Cells "vertex_cells" Csr_table `Get
          (Loaded_stride { table = "cell_vertices"; space = Vertices; width = 3 });
        site "pv_cell" Cells "vertex_kite_areas" Csr_table `Get
          (Loaded_stride { table = "cell_vertices"; space = Vertices; width = 3 });
        via "pv_cell" Cells "pv_vertex" "cell_vertices" Vertices;
        site "pv_cell" Cells "area_cell" Geometry `Get Iter;
        site "pv_cell" Cells "out" Field `Set Iter;
      ];
      (* Operators.tangential_velocity *)
      eoe_row "tangential_velocity" [ "eoe_edges"; "eoe_weights" ];
      [
        via "tangential_velocity" Edges "u" "eoe_edges" Edges;
        site "tangential_velocity" Edges "out" Field `Set Iter;
      ];
      (* Operators.tend_h *)
      cell_row "tend_h" [ "cell_edges"; "cell_edge_signs" ];
      [
        via "tend_h" Cells "h_edge" "cell_edges" Edges;
        via "tend_h" Cells "u" "cell_edges" Edges;
        via_geom "tend_h" Cells "dv_edge" "cell_edges" Edges;
        site "tend_h" Cells "area_cell" Geometry `Get Iter;
        site "tend_h" Cells "out" Field `Set Iter;
      ];
      (* Operators.tend_u *)
      eoe_row "tend_u" [ "eoe_edges"; "eoe_weights" ];
      [
        site "tend_u" Edges "pv_edge" Field `Get Iter;
        via "tend_u" Edges "pv_edge" "eoe_edges" Edges;
        via "tend_u" Edges "u" "eoe_edges" Edges;
        via "tend_u" Edges "h_edge" "eoe_edges" Edges;
        site "tend_u" Edges "edge_cells" Csr_table `Get (Stride 2);
        via "tend_u" Edges "h" "edge_cells" Cells;
        via "tend_u" Edges "b" "edge_cells" Cells;
        via "tend_u" Edges "ke" "edge_cells" Cells;
        site "tend_u" Edges "dc_edge" Geometry `Get Iter;
        site "tend_u" Edges "out" Field `Set Iter;
      ];
      (* Operators.tracer_edge *)
      [
        site "tracer_edge" Edges "edge_cells" Csr_table `Get (Stride 2);
        via "tracer_edge" Edges "tracer" "edge_cells" Cells;
        site "tracer_edge" Edges "u" Field `Get Iter;
        site "tracer_edge" Edges "out" Field `Set Iter;
      ];
      (* Operators.tend_tracer *)
      cell_row "tend_tracer" [ "cell_edges"; "cell_edge_signs" ];
      [
        via "tend_tracer" Cells "h_edge" "cell_edges" Edges;
        via "tend_tracer" Cells "tracer_edge" "cell_edges" Edges;
        via "tend_tracer" Cells "u" "cell_edges" Edges;
        via_geom "tend_tracer" Cells "dv_edge" "cell_edges" Edges;
        site "tend_tracer" Cells "area_cell" Geometry `Get Iter;
        site "tend_tracer" Cells "out" Field `Set Iter;
      ];
      (* Operators.velocity_laplacian *)
      [
        site "velocity_laplacian" Edges "edge_cells" Csr_table `Get (Stride 2);
        site "velocity_laplacian" Edges "edge_vertices" Csr_table `Get
          (Stride 2);
        via "velocity_laplacian" Edges "divergence" "edge_cells" Cells;
        via "velocity_laplacian" Edges "vorticity" "edge_vertices" Vertices;
        site "velocity_laplacian" Edges "dc_edge" Geometry `Get Iter;
        site "velocity_laplacian" Edges "dv_edge" Geometry `Get Iter;
        site "velocity_laplacian" Edges "out" Field `Set Iter;
      ];
      (* Refactor.edge_to_cell_csr *)
      cell_row "edge_to_cell_csr" [ "cell_edge_signs"; "cell_edges" ];
      [
        via "edge_to_cell_csr" Cells "x" "cell_edges" Edges;
        site "edge_to_cell_csr" Cells "y" Field `Set Iter;
      ];
    ]

(* --- the member-strided ensemble kernels -------------------------------- *)

(* Every unsafe site in [Mpas_swe.Strided].  The CSR and geometry
   shapes repeat the solo catalog (the strided kernels read the same
   connectivity the same way); the new material is the slab accesses
   [m * size + inner], whose member base leans on the [check_slab]
   entry guard ([Slab_guard]) while the inner index discharges the
   usual CSR obligations, and the per-member mask/parameter/flag reads
   ([Member]) guarded by [check_range]/[check_params]/[check_flags]. *)
let strided_catalog =
  let k name = "strided." ^ name in
  let mem kernel loop a = site (k kernel) loop a Field `Get Member in
  let slab_iter kernel loop a access = site (k kernel) loop a Field access (Slab Iter) in
  let slab_via kernel loop a table space =
    site (k kernel) loop a Field `Get (Slab (Loaded { table; space }))
  in
  List.concat
    [
      [
        mem "blit_state" Cells "on";
        slab_iter "blit_state" Cells "src" `Get;
        slab_iter "blit_state" Cells "dst" `Set;
      ];
      (* d2fdx2 *)
      cell_row (k "d2fdx2") [ "cell_edges"; "cell_neighbors" ];
      [
        mem "d2fdx2" Cells "on";
        slab_iter "d2fdx2" Cells "h" `Get;
        slab_via "d2fdx2" Cells "h" "cell_neighbors" Cells;
        via_geom (k "d2fdx2") Cells "dv_edge" "cell_edges" Edges;
        via_geom (k "d2fdx2") Cells "dc_edge" "cell_edges" Edges;
        site (k "d2fdx2") Cells "area_cell" Geometry `Get Iter;
        slab_iter "d2fdx2" Cells "out" `Set;
      ];
      (* h_edge *)
      [
        mem "h_edge" Edges "on";
        mem "h_edge" Edges "fourth";
        site (k "h_edge") Edges "edge_cells" Csr_table `Get (Stride 2);
        site (k "h_edge") Edges "dc_edge" Geometry `Get Iter;
        slab_via "h_edge" Edges "h" "edge_cells" Cells;
        slab_via "h_edge" Edges "d2fdx2_cell" "edge_cells" Cells;
        slab_iter "h_edge" Edges "out" `Set;
      ];
      (* kinetic_energy *)
      cell_row (k "kinetic_energy") [ "cell_edges" ];
      [
        mem "kinetic_energy" Cells "on";
        slab_via "kinetic_energy" Cells "u" "cell_edges" Edges;
        via_geom (k "kinetic_energy") Cells "dc_edge" "cell_edges" Edges;
        via_geom (k "kinetic_energy") Cells "dv_edge" "cell_edges" Edges;
        site (k "kinetic_energy") Cells "area_cell" Geometry `Get Iter;
        slab_iter "kinetic_energy" Cells "out" `Set;
      ];
      (* divergence *)
      cell_row (k "divergence") [ "cell_edges"; "cell_edge_signs" ];
      [
        mem "divergence" Cells "on";
        slab_via "divergence" Cells "u" "cell_edges" Edges;
        via_geom (k "divergence") Cells "dv_edge" "cell_edges" Edges;
        site (k "divergence") Cells "area_cell" Geometry `Get Iter;
        slab_iter "divergence" Cells "out" `Set;
      ];
      (* vorticity *)
      [
        mem "vorticity" Vertices "on";
        site (k "vorticity") Vertices "vertex_edges" Csr_table `Get (Stride 3);
        site (k "vorticity") Vertices "vertex_edge_signs" Csr_table `Get
          (Stride 3);
        slab_via "vorticity" Vertices "u" "vertex_edges" Edges;
        via_geom (k "vorticity") Vertices "dc_edge" "vertex_edges" Edges;
        site (k "vorticity") Vertices "area_triangle" Geometry `Get Iter;
        slab_iter "vorticity" Vertices "out" `Set;
      ];
      (* h_vertex *)
      [
        mem "h_vertex" Vertices "on";
        site (k "h_vertex") Vertices "vertex_cells" Csr_table `Get (Stride 3);
        site (k "h_vertex") Vertices "vertex_kite_areas" Csr_table `Get
          (Stride 3);
        slab_via "h_vertex" Vertices "h" "vertex_cells" Cells;
        site (k "h_vertex") Vertices "area_triangle" Geometry `Get Iter;
        slab_iter "h_vertex" Vertices "out" `Set;
      ];
      (* pv_vertex: member-outer over the full vertex stride *)
      [
        mem "pv_vertex" Vertices "on";
        slab_iter "pv_vertex" Vertices "f_vertex" `Get;
        slab_iter "pv_vertex" Vertices "vorticity" `Get;
        slab_iter "pv_vertex" Vertices "h_vertex" `Get;
        slab_iter "pv_vertex" Vertices "out" `Set;
      ];
      (* pv_cell *)
      cell_row (k "pv_cell") [ "cell_vertices" ];
      [
        mem "pv_cell" Cells "on";
        site (k "pv_cell") Cells "vertex_cells" Csr_table `Get
          (Loaded_stride { table = "cell_vertices"; space = Vertices; width = 3 });
        site (k "pv_cell") Cells "vertex_kite_areas" Csr_table `Get
          (Loaded_stride { table = "cell_vertices"; space = Vertices; width = 3 });
        slab_via "pv_cell" Cells "pv_vertex" "cell_vertices" Vertices;
        site (k "pv_cell") Cells "area_cell" Geometry `Get Iter;
        slab_iter "pv_cell" Cells "out" `Set;
      ];
      (* tangential_velocity *)
      eoe_row (k "tangential_velocity") [ "eoe_edges"; "eoe_weights" ];
      [
        mem "tangential_velocity" Edges "on";
        slab_via "tangential_velocity" Edges "u" "eoe_edges" Edges;
        slab_iter "tangential_velocity" Edges "out" `Set;
      ];
      (* grad_pv *)
      [
        mem "grad_pv" Edges "on";
        site (k "grad_pv") Edges "edge_cells" Csr_table `Get (Stride 2);
        site (k "grad_pv") Edges "edge_vertices" Csr_table `Get (Stride 2);
        site (k "grad_pv") Edges "dc_edge" Geometry `Get Iter;
        site (k "grad_pv") Edges "dv_edge" Geometry `Get Iter;
        slab_via "grad_pv" Edges "pv_cell" "edge_cells" Cells;
        slab_via "grad_pv" Edges "pv_vertex" "edge_vertices" Vertices;
        slab_iter "grad_pv" Edges "out_n" `Set;
        slab_iter "grad_pv" Edges "out_t" `Set;
      ];
      (* pv_edge *)
      [
        mem "pv_edge" Edges "on";
        mem "pv_edge" Edges "apvm_factor";
        mem "pv_edge" Edges "dt";
        site (k "pv_edge") Edges "edge_vertices" Csr_table `Get (Stride 2);
        slab_via "pv_edge" Edges "pv_vertex" "edge_vertices" Vertices;
        slab_iter "pv_edge" Edges "u" `Get;
        slab_iter "pv_edge" Edges "grad_pv_n" `Get;
        slab_iter "pv_edge" Edges "grad_pv_t" `Get;
        slab_iter "pv_edge" Edges "v_tangential" `Get;
        slab_iter "pv_edge" Edges "out" `Set;
      ];
      (* tend_h *)
      cell_row (k "tend_h") [ "cell_edges"; "cell_edge_signs" ];
      [
        mem "tend_h" Cells "on";
        slab_via "tend_h" Cells "h_edge" "cell_edges" Edges;
        slab_via "tend_h" Cells "u" "cell_edges" Edges;
        via_geom (k "tend_h") Cells "dv_edge" "cell_edges" Edges;
        site (k "tend_h") Cells "area_cell" Geometry `Get Iter;
        slab_iter "tend_h" Cells "out" `Set;
      ];
      (* tend_u *)
      eoe_row (k "tend_u") [ "eoe_edges"; "eoe_weights" ];
      [
        mem "tend_u" Edges "on";
        mem "tend_u" Edges "symmetric";
        mem "tend_u" Edges "gravity";
        site (k "tend_u") Edges "edge_cells" Csr_table `Get (Stride 2);
        site (k "tend_u") Edges "dc_edge" Geometry `Get Iter;
        slab_iter "tend_u" Edges "pv_edge" `Get;
        slab_via "tend_u" Edges "pv_edge" "eoe_edges" Edges;
        slab_via "tend_u" Edges "u" "eoe_edges" Edges;
        slab_via "tend_u" Edges "h_edge" "eoe_edges" Edges;
        slab_via "tend_u" Edges "h" "edge_cells" Cells;
        slab_via "tend_u" Edges "b" "edge_cells" Cells;
        slab_via "tend_u" Edges "ke" "edge_cells" Cells;
        slab_iter "tend_u" Edges "out" `Set;
      ];
      (* dissipation *)
      [
        mem "dissipation" Edges "on";
        mem "dissipation" Edges "visc2";
        site (k "dissipation") Edges "edge_cells" Csr_table `Get (Stride 2);
        site (k "dissipation") Edges "edge_vertices" Csr_table `Get (Stride 2);
        site (k "dissipation") Edges "dc_edge" Geometry `Get Iter;
        site (k "dissipation") Edges "dv_edge" Geometry `Get Iter;
        slab_via "dissipation" Edges "divergence" "edge_cells" Cells;
        slab_via "dissipation" Edges "vorticity" "edge_vertices" Vertices;
        slab_iter "dissipation" Edges "tend_u" `Get;
        slab_iter "dissipation" Edges "tend_u" `Set;
      ];
      (* local_forcing *)
      [
        mem "local_forcing" Edges "on";
        mem "local_forcing" Edges "drag";
        slab_iter "local_forcing" Edges "u" `Get;
        slab_iter "local_forcing" Edges "tend_u" `Get;
        slab_iter "local_forcing" Edges "tend_u" `Set;
      ];
      (* enforce_boundary_edge *)
      [
        mem "enforce_boundary_edge" Edges "on";
        site (k "enforce_boundary_edge") Edges "boundary_edge" Geometry `Get
          Iter;
        slab_iter "enforce_boundary_edge" Edges "tend_u" `Set;
      ];
      (* next_substep_state: cell stride then edge stride, member-outer.
         [coef] is the per-panel scratch of substep coefficients,
         indexed [mm - mb] within one panel — covered by the same
         member-range contract as the mask reads. *)
      [
        mem "next_substep_state" Cells "on";
        mem "next_substep_state" Cells "dt";
        mem "next_substep_state" Cells "coef";
        slab_iter "next_substep_state" Cells "base_h" `Get;
        slab_iter "next_substep_state" Cells "tend_h" `Get;
        slab_iter "next_substep_state" Cells "provis_h" `Set;
        slab_iter "next_substep_state" Edges "base_u" `Get;
        slab_iter "next_substep_state" Edges "tend_u" `Get;
        slab_iter "next_substep_state" Edges "provis_u" `Set;
      ];
      (* accumulate *)
      [
        mem "accumulate" Cells "on";
        mem "accumulate" Cells "dt";
        mem "accumulate" Cells "coef";
        slab_iter "accumulate" Cells "tend_h" `Get;
        slab_iter "accumulate" Cells "accum_h" `Get;
        slab_iter "accumulate" Cells "accum_h" `Set;
        slab_iter "accumulate" Edges "tend_u" `Get;
        slab_iter "accumulate" Edges "accum_u" `Get;
        slab_iter "accumulate" Edges "accum_u" `Set;
      ];
    ]

(* --- the fused super-kernels -------------------------------------------- *)

(* Every unsafe site in [Mpas_swe.Fused] (kernel names prefixed
   ["fused."]).  The chains re-walk the same CSR rows as their member
   kernels, so the shapes repeat the solo catalog; the optional
   ride-along members (X4/X5 accumulation, dissipation, publication)
   contribute their own guarded field sites.  Array names follow the
   chain's local bindings where a member output is matched out
   generically (the [out] of an optional diagnostics member). *)
let fused_catalog =
  let k name = "fused." ^ name in
  List.concat
    [
      (* tend_h_chain: A1 [+X4] *)
      cell_row (k "tend_h_chain") [ "cell_edges"; "cell_edge_signs" ];
      [
        via (k "tend_h_chain") Cells "h_edge" "cell_edges" Edges;
        via (k "tend_h_chain") Cells "u" "cell_edges" Edges;
        via_geom (k "tend_h_chain") Cells "dv_edge" "cell_edges" Edges;
        site (k "tend_h_chain") Cells "area_cell" Geometry `Get Iter;
        site (k "tend_h_chain") Cells "out" Field `Set Iter;
        site (k "tend_h_chain") Cells "accum_h" Field `Get Iter;
        site (k "tend_h_chain") Cells "accum_h" Field `Set Iter;
        site (k "tend_h_chain") Cells "state_h" Field `Set Iter;
      ];
      (* tend_u_chain: B1 [+C1] [+X1] [+X2] [+X5] *)
      eoe_row (k "tend_u_chain") [ "eoe_edges"; "eoe_weights" ];
      [
        site (k "tend_u_chain") Edges "pv_edge" Field `Get Iter;
        via (k "tend_u_chain") Edges "pv_edge" "eoe_edges" Edges;
        via (k "tend_u_chain") Edges "u" "eoe_edges" Edges;
        site (k "tend_u_chain") Edges "u" Field `Get Iter;
        via (k "tend_u_chain") Edges "h_edge" "eoe_edges" Edges;
        site (k "tend_u_chain") Edges "edge_cells" Csr_table `Get (Stride 2);
        site (k "tend_u_chain") Edges "edge_vertices" Csr_table `Get
          (Stride 2);
        via (k "tend_u_chain") Edges "h" "edge_cells" Cells;
        via (k "tend_u_chain") Edges "b" "edge_cells" Cells;
        via (k "tend_u_chain") Edges "ke" "edge_cells" Cells;
        via (k "tend_u_chain") Edges "divergence" "edge_cells" Cells;
        via (k "tend_u_chain") Edges "vorticity" "edge_vertices" Vertices;
        site (k "tend_u_chain") Edges "dc_edge" Geometry `Get Iter;
        site (k "tend_u_chain") Edges "dv_edge" Geometry `Get Iter;
        site (k "tend_u_chain") Edges "boundary_edge" Geometry `Get Iter;
        site (k "tend_u_chain") Edges "out" Field `Set Iter;
        site (k "tend_u_chain") Edges "accum_u" Field `Get Iter;
        site (k "tend_u_chain") Edges "accum_u" Field `Set Iter;
        site (k "tend_u_chain") Edges "state_u" Field `Set Iter;
      ];
      (* diag_cells_chain: [H2] [+A2] [+A3] [+X4] *)
      cell_row
        (k "diag_cells_chain")
        [ "cell_edges"; "cell_edge_signs"; "cell_neighbors" ];
      [
        site (k "diag_cells_chain") Cells "h" Field `Get Iter;
        via (k "diag_cells_chain") Cells "h" "cell_neighbors" Cells;
        via (k "diag_cells_chain") Cells "u" "cell_edges" Edges;
        via_geom (k "diag_cells_chain") Cells "dc_edge" "cell_edges" Edges;
        via_geom (k "diag_cells_chain") Cells "dv_edge" "cell_edges" Edges;
        site (k "diag_cells_chain") Cells "area_cell" Geometry `Get Iter;
        site (k "diag_cells_chain") Cells "out" Field `Set Iter;
        site (k "diag_cells_chain") Cells "accum_h" Field `Get Iter;
        site (k "diag_cells_chain") Cells "accum_h" Field `Set Iter;
        site (k "diag_cells_chain") Cells "tend_h" Field `Get Iter;
        site (k "diag_cells_chain") Cells "state_h" Field `Set Iter;
      ];
      (* diag_edges_chain: B2 [+G] [+X5] *)
      eoe_row (k "diag_edges_chain") [ "eoe_edges"; "eoe_weights" ];
      [
        site (k "diag_edges_chain") Edges "edge_cells" Csr_table `Get
          (Stride 2);
        site (k "diag_edges_chain") Edges "dc_edge" Geometry `Get Iter;
        via (k "diag_edges_chain") Edges "h" "edge_cells" Cells;
        via (k "diag_edges_chain") Edges "d2fdx2_cell" "edge_cells" Cells;
        site (k "diag_edges_chain") Edges "h_edge_out" Field `Set Iter;
        via (k "diag_edges_chain") Edges "u" "eoe_edges" Edges;
        site (k "diag_edges_chain") Edges "v_out" Field `Set Iter;
        site (k "diag_edges_chain") Edges "accum_u" Field `Get Iter;
        site (k "diag_edges_chain") Edges "accum_u" Field `Set Iter;
        site (k "diag_edges_chain") Edges "tend_u" Field `Get Iter;
        site (k "diag_edges_chain") Edges "state_u" Field `Set Iter;
      ];
      (* vortex_chain: D1 [+C2] [+D2] *)
      [
        site (k "vortex_chain") Vertices "vertex_edges" Csr_table `Get
          (Stride 3);
        site (k "vortex_chain") Vertices "vertex_edge_signs" Csr_table `Get
          (Stride 3);
        site (k "vortex_chain") Vertices "vertex_cells" Csr_table `Get
          (Stride 3);
        site (k "vortex_chain") Vertices "vertex_kite_areas" Csr_table `Get
          (Stride 3);
        via (k "vortex_chain") Vertices "u" "vertex_edges" Edges;
        via_geom (k "vortex_chain") Vertices "dc_edge" "vertex_edges" Edges;
        via (k "vortex_chain") Vertices "h" "vertex_cells" Cells;
        site (k "vortex_chain") Vertices "area_triangle" Geometry `Get Iter;
        site (k "vortex_chain") Vertices "f_vertex" Geometry `Get Iter;
        site (k "vortex_chain") Vertices "vort_out" Field `Set Iter;
        site (k "vortex_chain") Vertices "out" Field `Set Iter;
      ];
      (* pv_edge_chain: [G+] H1 [+F] *)
      eoe_row (k "pv_edge_chain") [ "eoe_edges"; "eoe_weights" ];
      [
        site (k "pv_edge_chain") Edges "edge_cells" Csr_table `Get (Stride 2);
        site (k "pv_edge_chain") Edges "edge_vertices" Csr_table `Get
          (Stride 2);
        via (k "pv_edge_chain") Edges "u" "eoe_edges" Edges;
        site (k "pv_edge_chain") Edges "u" Field `Get Iter;
        site (k "pv_edge_chain") Edges "v_out" Field `Set Iter;
        via (k "pv_edge_chain") Edges "pv_cell" "edge_cells" Cells;
        via (k "pv_edge_chain") Edges "pv_vertex" "edge_vertices" Vertices;
        site (k "pv_edge_chain") Edges "dc_edge" Geometry `Get Iter;
        site (k "pv_edge_chain") Edges "dv_edge" Geometry `Get Iter;
        site (k "pv_edge_chain") Edges "gn_out" Field `Set Iter;
        site (k "pv_edge_chain") Edges "gt_out" Field `Set Iter;
        site (k "pv_edge_chain") Edges "v_tangential" Field `Get Iter;
        site (k "pv_edge_chain") Edges "out" Field `Set Iter;
      ];
      (* pv_cell_range: E *)
      cell_row (k "pv_cell_range") [ "cell_vertices" ];
      [
        site (k "pv_cell_range") Cells "vertex_cells" Csr_table `Get
          (Loaded_stride
             { table = "cell_vertices"; space = Vertices; width = 3 });
        site (k "pv_cell_range") Cells "vertex_kite_areas" Csr_table `Get
          (Loaded_stride
             { table = "cell_vertices"; space = Vertices; width = 3 });
        via (k "pv_cell_range") Cells "pv_vertex" "cell_vertices" Vertices;
        site (k "pv_cell_range") Cells "area_cell" Geometry `Get Iter;
        site (k "pv_cell_range") Cells "out" Field `Set Iter;
      ];
      (* next_substep_range: X3 over both spaces *)
      [
        site (k "next_substep_range") Cells "base_h" Field `Get Iter;
        site (k "next_substep_range") Cells "tend_h" Field `Get Iter;
        site (k "next_substep_range") Cells "provis_h" Field `Set Iter;
        site (k "next_substep_range") Edges "base_u" Field `Get Iter;
        site (k "next_substep_range") Edges "tend_u" Field `Get Iter;
        site (k "next_substep_range") Edges "provis_u" Field `Set Iter;
      ];
    ]

let catalog = catalog @ strided_catalog @ fused_catalog

(* --- discharging -------------------------------------------------------- *)

type verdict =
  | Proved of { assumptions : invariant list }
  | Refuted of invariant list

type site_report = {
  sr_site : site;
  sr_obligations : invariant list;
  sr_verdict : verdict;
}

let holds (errors : Mesh.Csr.error list) inv =
  let table_clean ~pred t =
    not (List.exists (fun e -> pred e && Mesh.Csr.error_table e = Some t) errors)
  in
  let offsets_clean o =
    table_clean o
      ~pred:(function
        | Mesh.Csr.Offsets_shape _ | Mesh.Csr.Row_width _ -> true
        | _ -> false)
  in
  let length_clean t =
    table_clean t
      ~pred:(function Mesh.Csr.Length_mismatch _ -> true | _ -> false)
  in
  match inv with
  | Offsets_shape_ok { offsets; _ } -> offsets_clean offsets
  | Flat_covered_ok { data; offsets } ->
      offsets_clean offsets && length_clean data
  | In_range_ok { table; _ } ->
      table_clean table
        ~pred:(function Mesh.Csr.Out_of_range _ -> true | _ -> false)
  | Strided_ok { table; _ } | Sized_ok { table; _ } -> length_clean table
  | Guarded_len _ | Slab_guard _ | Member_guard _ -> true

let audit_site errors s =
  let obl = obligations s in
  let failing = List.filter (fun inv -> not (holds errors inv)) obl in
  let verdict =
    if failing = [] then
      Proved { assumptions = List.filter is_assumption obl }
    else Refuted failing
  in
  { sr_site = s; sr_obligations = obl; sr_verdict = verdict }

let audit ?csr (m : Mesh.t) =
  let csr = match csr with Some c -> c | None -> Mesh.csr m in
  let errors = Mesh.Csr.validate m csr in
  List.map (audit_site errors) catalog

let refuted reports =
  List.filter
    (fun r -> match r.sr_verdict with Refuted _ -> true | _ -> false)
    reports

let site_name s =
  Printf.sprintf "%s: %s %s[%s]" s.s_kernel
    (match s.s_access with `Get -> "get" | `Set -> "set")
    s.s_array (index_name s.s_index)

(* --- coverage ----------------------------------------------------------- *)

(* The self-audit's first half: interpret each catalogued index shape
   over a live mesh, enumerating the concrete indices the kernel would
   touch and checking each against the bound its obligations promise
   (the real table length for CSR/geometry arrays, the guarded length
   for caller fields).  A site that enumerates zero indices, or whose
   array/table name fails to resolve against the mesh, is dead weight:
   the catalog claims a justification nothing exercises — usually a
   stale entry after a kernel change. *)

type coverage = {
  cv_site : site;
  cv_hits : int;  (** concrete indices enumerated on this mesh *)
  cv_oob : int;  (** of those, how many fell outside the bound *)
  cv_problem : string option;
      (** a name that did not resolve, or an unusable shape *)
}

let cv_dead c = c.cv_problem <> None || c.cv_hits = 0

let coverage_message c =
  match c.cv_problem with
  | Some p -> Printf.sprintf "%s: %s" (site_name c.cv_site) p
  | None ->
      Printf.sprintf "%s: %d hits, %d out of bounds" (site_name c.cv_site)
        c.cv_hits c.cv_oob

let int_table (csr : Mesh.csr) = function
  | "cell_offsets" -> Some csr.Mesh.cell_offsets
  | "cell_edges" -> Some csr.Mesh.cell_edges
  | "cell_vertices" -> Some csr.Mesh.cell_vertices
  | "cell_neighbors" -> Some csr.Mesh.cell_neighbors
  | "vertex_edges" -> Some csr.Mesh.vertex_edges
  | "vertex_cells" -> Some csr.Mesh.vertex_cells
  | "eoe_offsets" -> Some csr.Mesh.eoe_offsets
  | "eoe_edges" -> Some csr.Mesh.eoe_edges
  | "edge_cells" -> Some csr.Mesh.edge_cells
  | "edge_vertices" -> Some csr.Mesh.edge_vertices
  | _ -> None

let table_len (m : Mesh.t) (csr : Mesh.csr) name =
  match int_table csr name with
  | Some a -> Some (Array.length a)
  | None -> (
      match name with
      | "cell_edge_signs" -> Some (Array.length csr.Mesh.cell_edge_signs)
      | "vertex_edge_signs" -> Some (Array.length csr.Mesh.vertex_edge_signs)
      | "vertex_kite_areas" -> Some (Array.length csr.Mesh.vertex_kite_areas)
      | "eoe_weights" -> Some (Array.length csr.Mesh.eoe_weights)
      | "dc_edge" -> Some (Array.length m.Mesh.dc_edge)
      | "dv_edge" -> Some (Array.length m.Mesh.dv_edge)
      | "area_cell" -> Some (Array.length m.Mesh.area_cell)
      | "area_triangle" -> Some (Array.length m.Mesh.area_triangle)
      | "f_vertex" -> Some (Array.length m.Mesh.f_vertex)
      | "boundary_edge" -> Some (Array.length m.Mesh.boundary_edge)
      | _ -> None)

let interpret_site ~bw ~mhi (m : Mesh.t) (csr : Mesh.csr) s =
  let hits = ref 0 and oob = ref 0 in
  let problem = ref None in
  let flag msg = if !problem = None then problem := Some msg in
  let n_loop = space_size m s.s_loop in
  let touch bound idx =
    incr hits;
    if idx < 0 || idx >= bound then incr oob
  in
  (* the bound the obligations promise for the target array: the real
     length for mesh-owned arrays, the guarded length for fields *)
  let target_bound ~guarded =
    match s.s_class with
    | Field -> guarded
    | _ -> (
        match table_len m csr s.s_array with
        | Some l -> l
        | None ->
            flag ("array " ^ s.s_array ^ " does not resolve on this mesh");
            0)
  in
  (match s.s_index with
  | Iter ->
      let b = target_bound ~guarded:n_loop in
      if !problem = None then
        for i = 0 to n_loop - 1 do
          touch b i
        done
  | Iter_next ->
      let b = target_bound ~guarded:(n_loop + 1) in
      if !problem = None then
        for i = 1 to n_loop do
          touch b i
        done
  | Row offsets -> (
      match int_table csr offsets with
      | None -> flag ("offsets " ^ offsets ^ " do not resolve on this mesh")
      | Some offs ->
          if Array.length offs < n_loop + 1 then
            flag (offsets ^ " is shorter than the loop space")
          else
            let b = target_bound ~guarded:0 in
            if !problem = None then
              for i = 0 to n_loop - 1 do
                for j = offs.(i) to offs.(i + 1) - 1 do
                  touch b j
                done
              done)
  | Stride w ->
      let b = target_bound ~guarded:(w * n_loop) in
      if !problem = None then
        for i = 0 to n_loop - 1 do
          for kk = 0 to w - 1 do
            touch b ((w * i) + kk)
          done
        done
  | Loaded { table; space } -> (
      match int_table csr table with
      | None -> flag ("table " ^ table ^ " does not resolve on this mesh")
      | Some tbl ->
          let ns = space_size m space in
          let b = min ns (target_bound ~guarded:ns) in
          if !problem = None then Array.iter (fun v -> touch b v) tbl)
  | Loaded_stride { table; space; width } -> (
      match int_table csr table with
      | None -> flag ("table " ^ table ^ " does not resolve on this mesh")
      | Some tbl ->
          let ns = space_size m space in
          let b = min (width * ns) (target_bound ~guarded:(width * ns)) in
          if !problem = None then
            Array.iter
              (fun v ->
                for kk = 0 to width - 1 do
                  touch b ((width * v) + kk)
                done)
              tbl)
  | Member ->
      for mm = 0 to mhi - 1 do
        touch mhi mm
      done
  | Slab inner -> (
      let enumerate ns values =
        (* the slab guard: ceil(mhi/bw) whole panels of ns*bw entries *)
        let bound = (mhi + bw - 1) / bw * ns * bw in
        for mm = 0 to mhi - 1 do
          let pb = (mm / bw * ns * bw) + (mm mod bw) in
          values (fun v ->
              if v < 0 || v >= ns then begin
                incr hits;
                incr oob
              end
              else touch bound (pb + (v * bw)))
        done
      in
      match inner with
      | Iter ->
          enumerate n_loop (fun f ->
              for i = 0 to n_loop - 1 do
                f i
              done)
      | Loaded { table; space } -> (
          match int_table csr table with
          | None -> flag ("table " ^ table ^ " does not resolve on this mesh")
          | Some tbl ->
              enumerate (space_size m space) (fun f -> Array.iter f tbl))
      | _ -> flag "unsupported slab inner index"));
  { cv_site = s; cv_hits = !hits; cv_oob = !oob; cv_problem = !problem }

(* [bw]/[mhi] are the nominal panel width and member count used for the
   member-strided shapes (their guards are caller assumptions, so any
   representative values exercise the arithmetic). *)
let coverage ?(bw = 2) ?(mhi = 4) ?csr ?(sites = catalog) (m : Mesh.t) =
  let csr = match csr with Some c -> c | None -> Mesh.csr m in
  List.map (interpret_site ~bw ~mhi m csr) sites

(* --- source scan -------------------------------------------------------- *)

(* The self-audit's second half: scan the kernel sources for
   [Array.unsafe_get/set]/[A1.unsafe_get/set] occurrences, attribute
   each to its enclosing top-level function, resolve local aliases
   ([let offsets = csr.cell_offsets], [let bh = base.Fields.h]) to
   catalog names, and diff the (kernel, array, access) key sets in both
   directions.  A source key with no catalog entry is an un-catalogued
   unsafe site — a fast path with no machine-checked justification.  A
   catalog key with no source site is stale.  Keys deliberately ignore
   the index shape: the catalog is shape-level and one entry may stand
   for a small unrolled group. *)

type scan_site = {
  sc_kernel : string;
  sc_array : string;
  sc_access : [ `Get | `Set ];
  sc_line : int;
}

let scan_site_name s =
  Printf.sprintf "%s: %s %s (line %d)" s.sc_kernel
    (match s.sc_access with `Get -> "get" | `Set -> "set")
    s.sc_array s.sc_line

let fun_re = Str.regexp "^let +\\(rec +\\)?\\([a-z_][A-Za-z0-9_']*\\)"

let alias_re =
  Str.regexp
    ("\\(let\\|and\\) +\\([a-z_][A-Za-z0-9_']*\\) += +"
   ^ "\\([a-z_][A-Za-z0-9_']*\\)\\.\\([A-Z][A-Za-z0-9_]*\\.\\)?"
   ^ "\\([a-z_][A-Za-z0-9_']*\\)")

let unsafe_re =
  Str.regexp "\\(Array\\|A1\\)\\.unsafe_\\(get\\|set\\) +\\([a-z_][A-Za-z0-9_']*\\)"

(* [bh = base.Fields.h] -> "base_h"; [th = tend.Fields.tend_h] ->
   "tend_h"; [offsets = csr.cell_offsets] -> "cell_offsets". *)
let canonical root field =
  if root = "csr" || root = "m" || root = "mesh" then field
  else
    let pre = root ^ "_" in
    let lp = String.length pre in
    if String.length field > lp && String.sub field 0 lp = pre then field
    else pre ^ field

let scan_file ~prefix path =
  let ic = open_in path in
  let sites = ref [] in
  let fn = ref "" in
  let aliases = Hashtbl.create 16 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if Str.string_match fun_re line 0 then begin
         fn := Str.matched_group 2 line;
         Hashtbl.reset aliases
       end;
       let pos = ref 0 in
       (try
          while true do
            ignore (Str.search_forward alias_re line !pos);
            pos := Str.match_end ();
            let local = Str.matched_group 2 line in
            let root = Str.matched_group 3 line in
            let field = Str.matched_group 5 line in
            Hashtbl.replace aliases local (canonical root field)
          done
        with Not_found -> ());
       let pos = ref 0 in
       try
         while true do
           ignore (Str.search_forward unsafe_re line !pos);
           pos := Str.match_end ();
           let access =
             match Str.matched_group 2 line with "get" -> `Get | _ -> `Set
           in
           let name = Str.matched_group 3 line in
           let arr =
             match Hashtbl.find_opt aliases name with
             | Some c -> c
             | None -> name
           in
           sites :=
             {
               sc_kernel = prefix ^ !fn;
               sc_array = arr;
               sc_access = access;
               sc_line = !lineno;
             }
             :: !sites
         done
       with Not_found -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !sites

(* The kernel sources the catalog covers, with their name prefixes,
   relative to the repository root. *)
let default_sources ~root =
  [
    ("", Filename.concat root "lib/swe/operators.ml");
    ("strided.", Filename.concat root "lib/swe/strided.ml");
    ("fused.", Filename.concat root "lib/swe/fused.ml");
    ("", Filename.concat root "lib/patterns/refactor.ml");
  ]

type scan_gap =
  | Uncatalogued of scan_site
      (** an unsafe access in the source with no catalog entry *)
  | Unscanned of site
      (** a catalog entry no source site matches — stale *)

let scan_gap_message = function
  | Uncatalogued s -> "uncatalogued unsafe site: " ^ scan_site_name s
  | Unscanned s -> "stale catalog entry: " ^ site_name s

let scan_audit ~sources cat =
  let scans =
    List.concat_map (fun (prefix, path) -> scan_file ~prefix path) sources
  in
  let scan_key s = (s.sc_kernel, s.sc_array, s.sc_access) in
  let site_key s = (s.s_kernel, s.s_array, s.s_access) in
  let dedupe keyf l =
    List.rev
      (snd
         (List.fold_left
            (fun (seen, acc) x ->
              let key = keyf x in
              if List.mem key seen then (seen, acc)
              else (key :: seen, x :: acc))
            ([], []) l))
  in
  let cat_keys = List.map site_key cat in
  let scan_keys = List.map scan_key scans in
  let uncatalogued =
    dedupe scan_key
      (List.filter (fun s -> not (List.mem (scan_key s) cat_keys)) scans)
  in
  let unscanned =
    dedupe site_key
      (List.filter (fun s -> not (List.mem (site_key s) scan_keys)) cat)
  in
  List.map (fun s -> Uncatalogued s) uncatalogued
  @ List.map (fun s -> Unscanned s) unscanned
