open Mpas_patterns

(* Dense index sets over one mesh-point space: the arrays involved are
   mesh-sized, so a bitset beats a tree at every size we analyze. *)
module Iset = struct
  type t = { mutable card : int; bits : bool array }

  let create n = { card = 0; bits = Array.make n false }
  let size s = Array.length s.bits
  let cardinal s = s.card
  let mem s i = s.bits.(i)

  let add s i =
    if not s.bits.(i) then begin
      s.bits.(i) <- true;
      s.card <- s.card + 1
    end

  let is_empty s = s.card = 0
  let is_full s = s.card = size s

  let inter_empty a b =
    let n = Int.min (size a) (size b) in
    let rec go i = i >= n || ((not (a.bits.(i) && b.bits.(i))) && go (i + 1)) in
    is_empty a || is_empty b || go 0

  let union a b =
    let n = Int.max (size a) (size b) in
    let u = create n in
    let blend s = Array.iteri (fun i x -> if x then add u i) s.bits in
    blend a;
    blend b;
    u

  let elements s =
    let out = ref [] in
    for i = size s - 1 downto 0 do
      if s.bits.(i) then out := i :: !out
    done;
    !out

  let of_list n l =
    let s = create n in
    List.iter (add s) l;
    s

  let summary s =
    if is_empty s then "none"
    else if is_full s then "all"
    else Printf.sprintf "%d/%d" s.card (size s)
end

type access = { point : Pattern.point; reads : Iset.t; writes : Iset.t }
type t = (string * access) list ref

let create () : t = ref []

let slot (fp : t) ~name ~point ~size =
  match List.assoc_opt name !fp with
  | Some a ->
      if a.point <> point then
        invalid_arg ("Footprint: point mismatch for slot " ^ name);
      a
  | None ->
      let a = { point; reads = Iset.create size; writes = Iset.create size } in
      fp := (name, a) :: !fp;
      a

let read fp ~name ~point ~size i = Iset.add (slot fp ~name ~point ~size).reads i
let write fp ~name ~point ~size i =
  Iset.add (slot fp ~name ~point ~size).writes i

let slots (fp : t) =
  List.sort (fun (a, _) (b, _) -> compare a b)
    (List.filter
       (fun (_, a) ->
         not (Iset.is_empty a.reads && Iset.is_empty a.writes))
       !fp)

let find (fp : t) name = List.assoc_opt name !fp

let union (a : t) (b : t) : t =
  let out = create () in
  let merge (name, (x : access)) =
    match List.assoc_opt name !out with
    | Some y ->
        out :=
          (name, { y with reads = Iset.union y.reads x.reads;
                          writes = Iset.union y.writes x.writes })
          :: List.remove_assoc name !out
    | None -> out := (name, x) :: !out
  in
  List.iter merge !a;
  List.iter merge !b;
  out

type conflict_kind = Raw | War | Waw

let kind_name = function Raw -> "RAW" | War -> "WAR" | Waw -> "WAW"

type conflict = { array_ : string; kind : conflict_kind }

let conflict_name c = kind_name c.kind ^ " on " ^ c.array_

(* Hazards between two unordered accesses, named from [a]'s side:
   [Raw] = a writes what b reads, [War] = a reads what b writes,
   [Waw] = both write overlapping cells. *)
let conflicts (a : t) (b : t) =
  List.concat_map
    (fun (name, (x : access)) ->
      match List.assoc_opt name !b with
      | None -> []
      | Some y ->
          let hit kind s t = if Iset.inter_empty s t then [] else [ { array_ = name; kind } ] in
          hit Raw x.writes y.reads @ hit War x.reads y.writes
          @ hit Waw x.writes y.writes)
    !a

let conflicting a b = conflicts a b <> []

let to_strings (fp : t) =
  List.map
    (fun (name, (a : access)) ->
      Printf.sprintf "%s[%s]: reads %s, writes %s" name
        (Pattern.point_name a.point) (Iset.summary a.reads)
        (Iset.summary a.writes))
    (slots fp)
