(** Verification of communication-extended schedules
    ({!Mpas_dist.Overlap}): the overlapped driver's declared region
    footprints lifted into the checkers' form, plus a shadow check
    that the declarations match the compiled pack/transfer/unpack
    closures. *)

open Mpas_runtime
open Mpas_dist

(** Per-task footprints of the overlapped program's two phases,
    aligned with the phases' task arrays.  Compute tasks carry their
    region index sets per variable and rank; comm tasks their
    send/ghost sets and staging buffers.  Writes are exact; reads
    over-approximate a stencil to the regions it can touch, matching
    the key scheme the driver derives its edges from — so a reported
    race is a real missing edge, never declaration noise. *)
val footprints : Overlap.t -> Footprint.t array * Footprint.t array

(** [Races.check_spec] under {!footprints}: happens-before
    reachability must order every conflicting pair, comm tasks
    included. *)
val check_spec : Overlap.t -> Races.phase_races list

(** [Races.check_log] under {!footprints}, for one model step's
    entries (drain the log each step). *)
val check_log : Overlap.t -> Exec.entry list -> Races.issue list

(** Run every pack -> transfer -> unpack chain over an encoded shadow
    state: each rank's copy of the field is filled with a
    rank-and-index encoding, the chain's bodies run in task order, and
    every ghost slot must then hold its owner's encoding while every
    other slot is untouched.  The field arrays are restored afterward.
    Returns violations, empty when the compiled comm bodies move
    exactly what the ghost maps declare. *)
val verify_bodies : Overlap.t -> string list
