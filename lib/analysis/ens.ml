open Mpas_patterns
open Mpas_runtime
open Mpas_ensemble

(* One footprint per task, from the engine's declared slot accesses.
   Each access covers the slot's full mesh space: the checker does not
   distinguish members within a block, which over-approximates the
   true per-member index sets — sound for race detection, and exactly
   the granularity at which the block-qualified slot names make
   cross-block disjointness visible. *)

let point_size mesh = function
  | Pattern.Mass -> mesh.Mpas_mesh.Mesh.n_cells
  | Pattern.Velocity -> mesh.Mpas_mesh.Mesh.n_edges
  | Pattern.Vorticity -> mesh.Mpas_mesh.Mesh.n_vertices

let footprint_of_task e phase ~task =
  let mesh = Ensemble.mesh e in
  let fp = Footprint.create () in
  List.iter
    (fun { Ensemble.a_slot; a_point; a_rw } ->
      let size = point_size mesh a_point in
      let acc = Footprint.slot fp ~name:a_slot ~point:a_point ~size in
      let fill (set : Footprint.Iset.t) =
        for i = 0 to size - 1 do
          Footprint.Iset.add set i
        done
      in
      (match a_rw with
      | Ensemble.Read -> fill acc.Footprint.reads
      | Ensemble.Write -> fill acc.Footprint.writes
      | Ensemble.Update ->
          fill acc.Footprint.reads;
          fill acc.Footprint.writes))
    (Ensemble.task_accesses e phase ~task);
  fp

let footprints e phase =
  let sp = Ensemble.spec e in
  let ph =
    match phase with `Early -> sp.Spec.early | `Final -> sp.Spec.final
  in
  Array.init (Array.length ph.Spec.tasks) (fun task ->
      footprint_of_task e phase ~task)

let check_spec e =
  Races.check_spec
    ~early_footprints:(footprints e `Early)
    ~final_footprints:(footprints e `Final)
    (Ensemble.spec e)

let clean e = Races.spec_clean (check_spec e)

let check_log e entries =
  Races.check_log ~spec:(Ensemble.spec e)
    ~early_footprints:(footprints e `Early)
    ~final_footprints:(footprints e `Final)
    entries
