open Mpas_runtime
open Mpas_dist

(* Verification of communication-extended schedules: the overlapped
   distributed driver declares, per task, region index sets (interior /
   boundary / ghost per rank, plus staging buffers).  [footprints]
   turns the declarations into the checkers' footprint form so
   [Races.check_spec] / [Races.check_log] cover pack/transfer/unpack
   tasks exactly like compute tasks; [verify_bodies] validates the
   declarations themselves against the compiled comm closures by
   running each chain over an encoded shadow state. *)

let footprint_of (accs : Overlap.access list) =
  let f = Footprint.create () in
  List.iter
    (fun (a : Overlap.access) ->
      List.iter
        (Array.iter (fun i ->
             Footprint.read f ~name:a.Overlap.a_slot ~point:a.Overlap.a_point
               ~size:a.Overlap.a_size i))
        a.Overlap.a_reads;
      List.iter
        (Array.iter (fun i ->
             Footprint.write f ~name:a.Overlap.a_slot ~point:a.Overlap.a_point
               ~size:a.Overlap.a_size i))
        a.Overlap.a_writes)
    accs;
  f

let footprints ov =
  ( Array.map footprint_of (Overlap.accesses ov `Early),
    Array.map footprint_of (Overlap.accesses ov `Final) )

let check_spec ov =
  let early_footprints, final_footprints = footprints ov in
  Races.check_spec ~early_footprints ~final_footprints (Overlap.spec ov)

let check_log ov entries =
  let early_footprints, final_footprints = footprints ov in
  Races.check_log ~spec:(Overlap.spec ov) ~early_footprints ~final_footprints
    entries

(* Exchanged fields of one phase, first-appearance order. *)
let comm_fields (tasks : Spec.task array) =
  Array.fold_left
    (fun acc (tk : Spec.task) ->
      match Spec.comm_of tk.Spec.kind with
      | Some c ->
          if List.mem_assoc c.Spec.cm_field acc then acc
          else (c.Spec.cm_field, c.Spec.cm_point) :: acc
      | None -> acc)
    [] tasks
  |> List.rev

let verify_bodies ov =
  let d = Overlap.driver ov in
  let x = d.Driver.exchange in
  let nr = x.Exchange.n_ranks in
  let m = x.Exchange.mesh in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let spec = Overlap.spec ov in
  List.iter
    (fun ph ->
      let phase =
        match ph with
        | `Early -> spec.Spec.early
        | `Final -> spec.Spec.final
      in
      let phase_name = match ph with `Early -> "early" | `Final -> "final" in
      let bodies = Overlap.bodies ov ph in
      List.iter
        (fun (field, point) ->
          let n, owner, ghosts_of =
            match point with
            | Mpas_patterns.Pattern.Mass ->
                ( m.Mpas_mesh.Mesh.n_cells,
                  x.Exchange.cell_owner,
                  fun r -> x.Exchange.sets.(r).Exchange.ghost_cells )
            | Mpas_patterns.Pattern.Velocity ->
                ( m.Mpas_mesh.Mesh.n_edges,
                  x.Exchange.edge_owner,
                  fun r -> x.Exchange.sets.(r).Exchange.ghost_edges )
            | Mpas_patterns.Pattern.Vorticity ->
                ( m.Mpas_mesh.Mesh.n_vertices,
                  x.Exchange.vertex_owner,
                  fun r -> x.Exchange.sets.(r).Exchange.ghost_vertices )
          in
          let encode r i = float_of_int (1 + (r * n) + i) in
          let arrs =
            Array.init nr (fun r -> Overlap.field_array d ~field ~rank:r)
          in
          let saved = Array.map Array.copy arrs in
          Array.iteri
            (fun r a ->
              for i = 0 to n - 1 do
                a.(i) <- encode r i
              done)
            arrs;
          (* run this field's pack -> transfer -> unpack chain in task
             (= spec topological) order *)
          Array.iteri
            (fun ti (tk : Spec.task) ->
              match Spec.comm_of tk.Spec.kind with
              | Some c when c.Spec.cm_field = field -> bodies.(ti) ()
              | _ -> ())
            phase.Spec.tasks;
          for r = 0 to nr - 1 do
            let ghost = Array.make n false in
            Array.iter (fun g -> ghost.(g) <- true) (ghosts_of r);
            for i = 0 to n - 1 do
              let expect =
                if ghost.(i) then encode owner.(i) i else encode r i
              in
              if arrs.(r).(i) <> expect then
                err "%s %s: rank %d slot %d holds %g, expected %g (%s)"
                  phase_name field r i
                  arrs.(r).(i)
                  expect
                  (if ghost.(i) then "ghost not filled from owner"
                   else "non-ghost value clobbered")
            done
          done;
          Array.iteri (fun r a -> Array.blit saved.(r) 0 a 0 n) arrs)
        (comm_fields phase.Spec.tasks))
    [ `Early; `Final ];
  List.rev !errors
