open Mpas_mesh
open Mpas_swe
open Mpas_patterns
open Mpas_runtime

(* Access inference by shadow instrumentation: every registry instance
   is compiled through Bind (exactly the closures the runtime
   schedules) and run against randomized field arrays; writes are
   detected by diffing two runs from two independent bases, reads by
   poisoning one cell at a time with NaN and watching whether any
   written cell's bits change.  The inferred footprint is then diffed
   against the Table I declarations. *)

type slot = { s_name : string; s_point : Pattern.point; s_arr : float array }

type t = {
  mesh : Mesh.t;
  env : Bind.env;
  slots : slot list;
  base1 : float array list;  (* aligned with slots *)
  base2 : float array list;
  cache :
    (string list * (float * float) option * bool, Footprint.t) Hashtbl.t;
}

(* Every conditional registry kernel must actually execute during
   probing: nonzero viscosity and drag (C1, X1), fourth-order advection
   (H2, B2's d2fdx2 read), nonzero APVM (F's advective reads). *)
let probe_config =
  {
    Config.default with
    Config.visc2 = 0.75;
    bottom_drag = 0.35;
    h_adv_order = Config.Fourth;
  }

(* Deterministic fill in [1, 2): reproducible probes without seeding
   the global RNG. *)
let fill_pseudo_random seed a =
  let s = ref (Int64.of_int (seed + 0x9E3779B9)) in
  for i = 0 to Array.length a - 1 do
    s := Int64.add (Int64.mul !s 6364136223846793005L) 1442695040888963407L;
    let mant = Int64.to_float (Int64.shift_right_logical !s 11) in
    a.(i) <- 1. +. (mant /. 9007199254740992.)
  done

let create ?(config = probe_config) mesh0 =
  (* The boundary mask gives X2 real work on a strict subset of the
     edges (its partial-write carry is part of what the checker
     verifies); every seventh edge keeps the subset strict. *)
  let mesh = Mesh.with_boundary_edges mesh0 (fun e -> e mod 7 = 0) in
  let state = Fields.alloc_state mesh in
  let work = Timestep.alloc_workspace mesh in
  let recon = Reconstruct.init mesh in
  let env =
    {
      Bind.cfg = config;
      mesh;
      b = Array.make mesh.Mesh.n_cells 0.;
      dt = 1.0;
      state;
      work;
      recon = Some recon;
      rk = 0;
    }
  in
  let diag = work.Timestep.diag
  and tend = work.Timestep.tend
  and provis = work.Timestep.provis
  and accum = work.Timestep.accum
  and rc = work.Timestep.recon in
  let s name point arr = { s_name = name; s_point = point; s_arr = arr } in
  let slots =
    [
      s "state.h" Pattern.Mass state.Fields.h;
      s "state.u" Pattern.Velocity state.Fields.u;
      s "provis.h" Pattern.Mass provis.Fields.h;
      s "provis.u" Pattern.Velocity provis.Fields.u;
      s "tend.tend_h" Pattern.Mass tend.Fields.tend_h;
      s "tend.tend_u" Pattern.Velocity tend.Fields.tend_u;
      s "accum.h" Pattern.Mass accum.Fields.h;
      s "accum.u" Pattern.Velocity accum.Fields.u;
      s "diag.d2fdx2_cell" Pattern.Mass diag.Fields.d2fdx2_cell;
      s "diag.h_edge" Pattern.Velocity diag.Fields.h_edge;
      s "diag.ke" Pattern.Mass diag.Fields.ke;
      s "diag.divergence" Pattern.Mass diag.Fields.divergence;
      s "diag.vorticity" Pattern.Vorticity diag.Fields.vorticity;
      s "diag.h_vertex" Pattern.Vorticity diag.Fields.h_vertex;
      s "diag.pv_vertex" Pattern.Vorticity diag.Fields.pv_vertex;
      s "diag.pv_cell" Pattern.Mass diag.Fields.pv_cell;
      s "diag.v_tangential" Pattern.Velocity diag.Fields.v_tangential;
      s "diag.grad_pv_n" Pattern.Velocity diag.Fields.grad_pv_n;
      s "diag.grad_pv_t" Pattern.Velocity diag.Fields.grad_pv_t;
      s "diag.pv_edge" Pattern.Velocity diag.Fields.pv_edge;
      s "diag.lap_u" Pattern.Velocity diag.Fields.lap_u;
      s "diag.div_lap" Pattern.Mass diag.Fields.div_lap;
      s "diag.vort_lap" Pattern.Vorticity diag.Fields.vort_lap;
      s "recon.ux" Pattern.Mass rc.Fields.ux;
      s "recon.uy" Pattern.Mass rc.Fields.uy;
      s "recon.uz" Pattern.Mass rc.Fields.uz;
      s "recon.zonal" Pattern.Mass rc.Fields.zonal;
      s "recon.meridional" Pattern.Mass rc.Fields.meridional;
    ]
  in
  let base which =
    List.mapi
      (fun k sl ->
        let b = Array.make (Array.length sl.s_arr) 0. in
        fill_pseudo_random ((which * 1000) + k) b;
        b)
      slots
  in
  { mesh; env; slots; base1 = base 1; base2 = base 2; cache = Hashtbl.create 64 }

let mesh t = t.mesh

let restore_all t from =
  List.iter2
    (fun sl b -> Array.blit b 0 sl.s_arr 0 (Array.length b))
    t.slots from

let bits = Int64.bits_of_float

let mk_fused_task ?part members =
  match members with
  | [] -> invalid_arg "Infer: fused task needs at least one member"
  | first :: _ ->
      {
        Spec.index = 0;
        instance = first;
        members;
        part;
        cls = Spec.Host;
        kind = Spec.Compute;
        level = 0;
        preds = [];
        succs = [];
      }

let mk_task ?part inst = mk_fused_task ?part [ inst ]

let infer_uncached t ~final (tk : Spec.task) =
  let env = t.env in
  env.Bind.rk <- (if final then 3 else 0);
  let body = Bind.compile env ~final tk in
  let n_slots = List.length t.slots in
  let slots = Array.of_list t.slots in
  let b1 = Array.of_list t.base1 and b2 = Array.of_list t.base2 in
  (* Write detection: cells that change from either base.  A kernel
     would have to reproduce the incumbent pseudo-random value under
     both bases for a write to hide — none can. *)
  let writes = Array.map (fun sl -> Array.make (Array.length sl.s_arr) false) slots in
  restore_all t t.base1;
  body ();
  let ref1 = Array.map (fun sl -> Array.copy sl.s_arr) slots in
  for k = 0 to n_slots - 1 do
    let arr = slots.(k).s_arr and base = b1.(k) in
    for i = 0 to Array.length arr - 1 do
      if bits arr.(i) <> bits base.(i) then writes.(k).(i) <- true
    done
  done;
  restore_all t t.base2;
  body ();
  for k = 0 to n_slots - 1 do
    let arr = slots.(k).s_arr and base = b2.(k) in
    for i = 0 to Array.length arr - 1 do
      if bits arr.(i) <> bits base.(i) then writes.(k).(i) <- true
    done
  done;
  let touched =
    List.filter
      (fun k -> Array.exists Fun.id writes.(k))
      (List.init n_slots Fun.id)
  in
  let write_idx =
    List.map
      (fun k ->
        let out = ref [] in
        Array.iteri (fun i w -> if w then out := i :: !out) writes.(k);
        (k, !out))
      touched
  in
  (* Read detection: poison one cell, rerun from base1, and compare the
     written cells bit-for-bit against the reference run.  A blind
     overwrite of the poisoned cell reproduces the reference (no read);
     any data flow from the cell leaves a NaN or a changed value. *)
  let reads = Array.map (fun sl -> Array.make (Array.length sl.s_arr) false) slots in
  restore_all t t.base1;
  let restore_touched () =
    List.iter
      (fun k ->
        Array.blit b1.(k) 0 slots.(k).s_arr 0 (Array.length b1.(k)))
      touched
  in
  for a = 0 to n_slots - 1 do
    let arr = slots.(a).s_arr in
    for i = 0 to Array.length arr - 1 do
      arr.(i) <- Float.nan;
      body ();
      let evidence =
        List.exists
          (fun (k, idx) ->
            let out = slots.(k).s_arr and re = ref1.(k) in
            List.exists (fun j -> bits out.(j) <> bits re.(j)) idx)
          write_idx
      in
      if evidence then reads.(a).(i) <- true;
      restore_touched ();
      arr.(i) <- b1.(a).(i)
    done
  done;
  restore_all t t.base1;
  let fp = Footprint.create () in
  Array.iteri
    (fun k sl ->
      let size = Array.length sl.s_arr in
      Array.iteri
        (fun i r ->
          if r then
            Footprint.read fp ~name:sl.s_name ~point:sl.s_point ~size i)
        reads.(k);
      Array.iteri
        (fun i w ->
          if w then
            Footprint.write fp ~name:sl.s_name ~point:sl.s_point ~size i)
        writes.(k))
    slots;
  fp

let task_footprint t ~final (tk : Spec.task) =
  let key =
    ( List.map (fun (m : Pattern.instance) -> m.Pattern.id) tk.Spec.members,
      tk.Spec.part,
      final )
  in
  match Hashtbl.find_opt t.cache key with
  | Some fp -> fp
  | None ->
      let fp = infer_uncached t ~final tk in
      Hashtbl.add t.cache key fp;
      fp

let instance_footprint t ~final ~part inst =
  task_footprint t ~final (mk_task ?part inst)

let spec_footprints t (spec : Spec.t) =
  ( Array.map (task_footprint t ~final:false) spec.Spec.early.Spec.tasks,
    Array.map (task_footprint t ~final:true) spec.Spec.final.Spec.tasks )

(* --- registry diff ----------------------------------------------------- *)

type mode = Csr | Ragged | Parts of float

let mode_name = function
  | Csr -> "csr"
  | Ragged -> "ragged"
  | Parts f -> Printf.sprintf "parts(%g)" f

type violation =
  | Undeclared_read of string
  | Undeclared_write of string
  | Unread_input of string
  | Unwritten_output of string

let violation_message = function
  | Undeclared_read a -> "undeclared read of " ^ a
  | Undeclared_write a -> "undeclared write of " ^ a
  | Unread_input v -> "declared input " ^ v ^ " never read"
  | Unwritten_output v -> "declared output " ^ v ^ " never written"

type report = {
  r_instance : string;
  r_phase : [ `Early | `Final ];
  r_mode : mode;
  r_violations : violation list;
}

(* Concrete array slots a declared variable denotes for one instance.
   The accumulative update is the one indirection: its "h"/"u" are the
   accumulator rows, plus (in the final substep) the state rows the
   task publishes into. *)
let slots_of_var (inst : Pattern.instance) ~final ~write v =
  match (v, inst.Pattern.kernel) with
  | "h", Pattern.Accumulative_update ->
      if write && final then [ "accum.h"; "state.h" ] else [ "accum.h" ]
  | "u", Pattern.Accumulative_update ->
      if write && final then [ "accum.u"; "state.u" ] else [ "accum.u" ]
  | "h", _ -> [ "state.h" ]
  | "u", _ -> [ "state.u" ]
  | "provis_h", _ -> [ "provis.h" ]
  | "provis_u", _ -> [ "provis.u" ]
  | "tend_h", _ -> [ "tend.tend_h" ]
  | "tend_u", _ -> [ "tend.tend_u" ]
  | "v", _ -> [ "diag.v_tangential" ]
  | "uReconstructX", _ -> [ "recon.ux" ]
  | "uReconstructY", _ -> [ "recon.uy" ]
  | "uReconstructZ", _ -> [ "recon.uz" ]
  | "uReconstructZonal", _ -> [ "recon.zonal" ]
  | "uReconstructMeridional", _ -> [ "recon.meridional" ]
  | d, _ -> [ "diag." ^ d ]

let parts_of_mode = function
  | Csr -> [ None ]
  | Ragged -> [ Some (0., 1.) ]
  | Parts f ->
      let f = Float.max 0.05 (Float.min 0.95 f) in
      [ Some (0., f); Some (f, 1.) ]

let check_instance t ~final ~mode (inst : Pattern.instance) =
  let fp =
    List.fold_left
      (fun acc part ->
        let fp = instance_footprint t ~final ~part inst in
        match acc with None -> Some fp | Some a -> Some (Footprint.union a fp))
      None (parts_of_mode mode)
    |> Option.get
  in
  let expected f lst =
    List.sort_uniq compare
      (List.concat_map (fun v -> slots_of_var inst ~final ~write:f v) lst)
  in
  let expected_reads = expected false inst.Pattern.inputs in
  let expected_writes = expected true inst.Pattern.outputs in
  let undeclared =
    List.concat_map
      (fun (name, (a : Footprint.access)) ->
        let r =
          if
            (not (Footprint.Iset.is_empty a.Footprint.reads))
            && not (List.mem name expected_reads)
          then [ Undeclared_read name ]
          else []
        in
        let w =
          if
            (not (Footprint.Iset.is_empty a.Footprint.writes))
            && not (List.mem name expected_writes)
          then [ Undeclared_write name ]
          else []
        in
        r @ w)
      (Footprint.slots fp)
  in
  let read_somewhere v =
    List.exists
      (fun name ->
        match Footprint.find fp name with
        | Some a -> not (Footprint.Iset.is_empty a.Footprint.reads)
        | None -> false)
      (slots_of_var inst ~final ~write:false v)
  in
  (* Partial-write carry: a declared input that is also an output counts
     as read when the task writes a strict subset of the space — the
     preserved complement is the carried dependency (X2's boundary
     mask). *)
  let carried v =
    List.mem v inst.Pattern.outputs
    && List.exists
         (fun name ->
           match Footprint.find fp name with
           | Some a ->
               (not (Footprint.Iset.is_empty a.Footprint.writes))
               && not (Footprint.Iset.is_full a.Footprint.writes)
           | None -> false)
         (slots_of_var inst ~final ~write:true v)
  in
  let unread =
    List.filter_map
      (fun v ->
        if read_somewhere v || carried v then None else Some (Unread_input v))
      inst.Pattern.inputs
  in
  let unwritten =
    List.filter_map
      (fun v ->
        let written =
          List.exists
            (fun name ->
              match Footprint.find fp name with
              | Some a -> not (Footprint.Iset.is_empty a.Footprint.writes)
              | None -> false)
            (slots_of_var inst ~final ~write:true v)
        in
        if written then None else Some (Unwritten_output v))
      inst.Pattern.outputs
  in
  undeclared @ unread @ unwritten

(* Fused super-task validation: the compiled super-kernel's inferred
   footprint, diffed against the union of the members' Table I
   declarations.  Inputs a member reads from an earlier member's
   output are {e internal} — the super-kernel may carry them in
   registers, so reading the array is optional (and in fact invisible
   to the NaN probe, since the fused body overwrites the slot before
   any member could read it).  Every member's declared outputs must
   still be written in full: a fusion that drops a member's write set
   (or a member wholesale) is exactly the bug this check exists to
   catch. *)
let check_fused ?body t ~final ~mode (members : Pattern.instance list) =
  if members = [] then invalid_arg "Infer.check_fused: no members";
  let body = Option.value body ~default:members in
  let fp =
    List.fold_left
      (fun acc part ->
        let fp = task_footprint t ~final (mk_fused_task ?part body) in
        match acc with None -> Some fp | Some a -> Some (Footprint.union a fp))
      None (parts_of_mode mode)
    |> Option.get
  in
  let out_slots (m : Pattern.instance) =
    List.concat_map (fun v -> slots_of_var m ~final ~write:true v)
      m.Pattern.outputs
  in
  let in_slots (m : Pattern.instance) =
    List.concat_map (fun v -> slots_of_var m ~final ~write:false v)
      m.Pattern.inputs
  in
  let expected_reads =
    List.sort_uniq compare (List.concat_map in_slots members)
  in
  let expected_writes =
    List.sort_uniq compare (List.concat_map out_slots members)
  in
  let undeclared =
    List.concat_map
      (fun (name, (a : Footprint.access)) ->
        let r =
          if
            (not (Footprint.Iset.is_empty a.Footprint.reads))
            && not (List.mem name expected_reads)
          then [ Undeclared_read name ]
          else []
        in
        let w =
          if
            (not (Footprint.Iset.is_empty a.Footprint.writes))
            && not (List.mem name expected_writes)
          then [ Undeclared_write name ]
          else []
        in
        r @ w)
      (Footprint.slots fp)
  in
  let read_slot name =
    match Footprint.find fp name with
    | Some a -> not (Footprint.Iset.is_empty a.Footprint.reads)
    | None -> false
  in
  let written_slot name =
    match Footprint.find fp name with
    | Some a -> not (Footprint.Iset.is_empty a.Footprint.writes)
    | None -> false
  in
  let partial_slot name =
    match Footprint.find fp name with
    | Some a ->
        (not (Footprint.Iset.is_empty a.Footprint.writes))
        && not (Footprint.Iset.is_full a.Footprint.writes)
    | None -> false
  in
  (* Walk members in chain order, accumulating the slots produced so
     far: a later member's input found there is internalized. *)
  let violations = ref [] in
  let produced = ref [] in
  List.iter
    (fun (m : Pattern.instance) ->
      List.iter
        (fun v ->
          let slots = slots_of_var m ~final ~write:false v in
          let internal = List.exists (fun s -> List.mem s !produced) slots in
          let carried =
            List.mem v m.Pattern.outputs
            && List.exists partial_slot (slots_of_var m ~final ~write:true v)
          in
          if
            (not internal) && (not carried)
            && not (List.exists read_slot slots)
          then
            violations :=
              Unread_input (m.Pattern.id ^ ":" ^ v) :: !violations)
        m.Pattern.inputs;
      List.iter
        (fun v ->
          let slots = slots_of_var m ~final ~write:true v in
          if not (List.exists written_slot slots) then
            violations :=
              Unwritten_output (m.Pattern.id ^ ":" ^ v) :: !violations;
          produced := slots @ !produced)
        m.Pattern.outputs)
    members;
  undeclared @ List.rev !violations

let default_fused_modes = [ Csr; Parts 0.4 ]

(* Every fused chain the planner actually builds, under every plan
   shape the spec admits — the fusion analogue of [check_registry]. *)
let check_fused_spec ?(modes = default_fused_modes) t =
  let spec = Spec.build ~fuse:true ~recon:true () in
  List.concat_map
    (fun (final, phase, (p : Spec.phase)) ->
      List.concat_map
        (fun (tk : Spec.task) ->
          List.map
            (fun mode ->
              {
                r_instance =
                  String.concat "+"
                    (List.map
                       (fun (m : Pattern.instance) -> m.Pattern.id)
                       tk.Spec.members);
                r_phase = phase;
                r_mode = mode;
                r_violations = check_fused t ~final ~mode tk.Spec.members;
              })
            modes)
        (Array.to_list p.Spec.tasks))
    [ (false, `Early, spec.Spec.early); (true, `Final, spec.Spec.final) ]

let default_modes = [ Csr; Ragged; Parts 0.4 ]

let check_registry ?(modes = default_modes) t =
  let spec = Spec.build ~recon:true () in
  let phase_instances (p : Spec.phase) =
    Array.to_list (Array.map (fun tk -> tk.Spec.instance) p.Spec.tasks)
  in
  List.concat_map
    (fun (final, phase, insts) ->
      List.concat_map
        (fun inst ->
          List.map
            (fun mode ->
              {
                r_instance = inst.Pattern.id;
                r_phase = phase;
                r_mode = mode;
                r_violations = check_instance t ~final ~mode inst;
              })
            modes)
        insts)
    [
      (false, `Early, phase_instances spec.Spec.early);
      (true, `Final, phase_instances spec.Spec.final);
    ]

let failed reports = List.filter (fun r -> r.r_violations <> []) reports
