(** Race checking for the ensemble engine's member-axis programs.

    The ensemble claims its member axis is conflict-free by
    construction: tasks of one member block form a chain, and blocks
    touch disjoint block-qualified slots (["tend_u@b3"]).  This module
    verifies that instead of assuming it — it lifts the engine's
    declared {!Mpas_ensemble.Ensemble.task_accesses} into
    {!Footprint.t} arrays (every access covering the slot's full mesh
    space: members of a block are not distinguished below slot
    granularity, the sound over-approximation) and runs the same
    {!Races} checkers the solo phase programs go through.

    [check_spec] is the static side: unordered task pairs with
    conflicting footprints.  [check_log] replays one batch step's
    executor log, proving the schedule actually respected the chain
    edges and never overlapped conflicting tasks. *)

open Mpas_runtime
open Mpas_ensemble

(** Footprints aligned with the phase's task array, from the engine's
    declared accesses. *)
val footprints : Ensemble.t -> [ `Early | `Final ] -> Footprint.t array

(** Static check of both phases; empty race lists mean the member
    axis really is conflict-free. *)
val check_spec : Ensemble.t -> Races.phase_races list

val clean : Ensemble.t -> bool

(** Replay a log covering {e one} batch step (one sweep: early
    substeps 0-2 and the final substep), as collected by the engine's
    [log] callback.  Drain the log after every step. *)
val check_log : Ensemble.t -> Exec.entry list -> Races.issue list
