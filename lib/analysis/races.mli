(** Schedule race detection over compiled phase programs and executor
    logs.

    The static checker builds happens-before as reachability through a
    phase's edge set and flags unordered task pairs whose {e inferred}
    footprints conflict — independently re-deriving the hazard edges
    [Spec.build] inserts, from shadow instrumentation rather than the
    Table I declarations.

    The dynamic checker replays an [Exec] log: the executor's sequence
    counter is a sound happens-before witness ([a] finished before [b]
    iff [a.finish_seq < b.start_seq]), so the replay verifies every
    task ran exactly once, every spec edge was respected, and no
    conflicting pair actually overlapped. *)

open Mpas_runtime

(** [reachability phase].(b).(a) = task [a] provably precedes [b]. *)
val reachability : Spec.phase -> bool array array

type race = {
  ra : int;
  rb : int;
  ra_instance : string;
  rb_instance : string;
  r_conflicts : Footprint.conflict list;
}

val race_message : race -> string

(** Unordered conflicting pairs of one phase.  [footprints] aligns
    with [phase.tasks] (see [Infer.spec_footprints]). *)
val check_phase : footprints:Footprint.t array -> Spec.phase -> race list

(** All (pred, succ) edges of the phase. *)
val edges : Spec.phase -> (int * int) list

(** A copy with one edge deleted — the mutation tests use to prove a
    missing hazard edge is noticed. *)
val drop_edge : Spec.phase -> src:int -> dst:int -> Spec.phase

type phase_races = { pr_phase : [ `Early | `Final ]; pr_races : race list }

val check_spec :
  early_footprints:Footprint.t array ->
  final_footprints:Footprint.t array ->
  Spec.t ->
  phase_races list

val spec_clean : phase_races list -> bool

type issue =
  | Missing_task of { i_phase : [ `Early | `Final ]; substep : int; task : int }
  | Duplicate_task of {
      i_phase : [ `Early | `Final ];
      substep : int;
      task : int;
    }
  | Edge_unrespected of {
      i_phase : [ `Early | `Final ];
      substep : int;
      src : int;
      dst : int;
      src_instance : string;
      dst_instance : string;
      src_finish : int;  (** src's finish seq in the run *)
      dst_start : int;  (** dst's start seq — not after [src_finish] *)
    }
  | Concurrent_conflict of {
      i_phase : [ `Early | `Final ];
      substep : int;
      a : int;
      b : int;
      a_instance : string;
      b_instance : string;
      a_span : int * int;  (** a's (start, finish) seq interval *)
      b_span : int * int;
      conflicts : Footprint.conflict list;
    }

(** Renders the full witness: for ordering violations, the task pair by
    index {e and} instance name plus the sequence numbers that prove
    the overlap; for conflicts, also the offending slots. *)
val issue_message : issue -> string

(** Replay a log (as produced by [Engine.step] with [~log]) covering
    {e one} model step: entries are grouped by (phase, substep), each
    group one [run_phase] call with its own sequence counter.  Runs of
    different steps reuse keys and counters, so drain the log after
    every step. *)
val check_log :
  spec:Spec.t ->
  early_footprints:Footprint.t array ->
  final_footprints:Footprint.t array ->
  Exec.entry list ->
  issue list
