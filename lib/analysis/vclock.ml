(* Vector clocks over a fixed universe of components.

   The online race detector (Tsan) uses one component per *task* of the
   monitored phase program rather than one per lane.  Per-lane epochs —
   the classic FastTrack layout — are unsound here: the happens-before
   relation under test is the DAG's acquire/release order only, and a
   lane-indexed counter would silently order any two tasks that the
   scheduler happened to serialize on one lane, masking exactly the
   missing-edge bugs the detector exists to catch.  With one component
   per task, a task's clock is the set of tasks whose release it
   (transitively) acquired, each component is written by exactly one
   owner, and the FastTrack epoch comparison degenerates to an O(1)
   component read. *)

type t = int array

let create n = Array.make n 0

let copy = Array.copy

let size = Array.length

let get (v : t) i = v.(i)

let tick (v : t) i = v.(i) <- v.(i) + 1

(* a := a join b, elementwise max. *)
let join (a : t) (b : t) =
  if Array.length a <> Array.length b then
    invalid_arg "Vclock.join: component universes differ";
  for i = 0 to Array.length a - 1 do
    if b.(i) > a.(i) then a.(i) <- b.(i)
  done

let leq (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if a.(i) > b.(i) then ok := false
  done;
  !ok

(* The epoch test: has [v] observed (acquired) component [i]'s release?
   With one writer per component, [observed v i] iff the owner's
   release happened-before the clock's owner. *)
let observed (v : t) i = v.(i) > 0

let to_string (v : t) =
  "["
  ^ String.concat ";"
      (List.filter_map
         (fun i -> if v.(i) > 0 then Some (string_of_int i) else None)
         (List.init (Array.length v) Fun.id))
  ^ "]"
