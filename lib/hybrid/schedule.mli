open Mpas_machine

(** Build the per-time-step task system of a placement plan and
    simulate it on the node model.

    One RK-4 step is unrolled into its four substeps: the first three
    run compute_tend, enforce_boundary_edge, compute_next_substep_state,
    compute_solve_diagnostics and accumulative_update; the fourth skips
    the substep state, accumulates into the prognostic state, runs the
    diagnostics on it, and reconstructs (Algorithm 1).  Dependencies
    between instances come from the data-flow graph rules (last writer
    in execution order); inputs of the first substep are resident where
    their steady-state producer runs.

    Adjustable instances are split [f] on host and [1 - f] on device
    with aligned output ranges, so a split consumer of a split producer
    only moves a halo sliver ([halo_fraction] of the field); mismatched
    fractions move the uncovered remainder over the PCIe link. *)

type config = {
  node : Hw.node;
  params : Costmodel.params;
  host_flags : Costmodel.flags;
  device_flags : Costmodel.flags;
  split : float;  (** host fraction of adjustable instances, in [0,1] *)
  offload_overhead_s : float;
      (** launch + sync latency of one offloaded region *)
  residency : bool;
      (** true: data stays on its producer's device (paper SS IV-A);
          false: on-demand transfers with immediate write-back, the
          kernel-level behaviour of SS II-C *)
}

val default_config : split:float -> config

(** Tasks of one full RK-4 step under the plan, in valid topological
    order. *)
val step_tasks : config -> Mpas_patterns.Cost.mesh_stats -> Plan.t -> Simulate.task list

(** Simulated wall-clock seconds of one step. *)
val step_time : config -> Mpas_patterns.Cost.mesh_stats -> Plan.t -> float

(** Grid-search the adjustable split for minimum step time; returns
    [(best_split, best_time)].  Plans without adjustable instances are
    insensitive to the split and return [(0., step_time)]. *)
val optimize_split :
  ?grid:int -> config -> Mpas_patterns.Cost.mesh_stats -> Plan.t -> float * float

(** Host/device utilization of one simulated step. *)
val step_result : config -> Mpas_patterns.Cost.mesh_stats -> Plan.t -> Simulate.result

(** Simulated seconds during which the host and device lanes are busy
    simultaneously — the overlap window of the hybrid design. *)
val overlap : Simulate.result -> float

(** [observe cfg stats plan] simulates one step and publishes it to the
    Obs layer: gauges [hybrid.split], [hybrid.makespan_s],
    [hybrid.host_busy_s], [hybrid.device_busy_s], [hybrid.link_busy_s]
    and [hybrid.overlap_s] in [registry] (default: process-wide), and —
    when a trace sink is active — one span per simulated task on the
    host (tid 1) / device (tid 2) lanes with the plan name and split
    ratio as span arguments.  Returns the simulation result. *)
val observe :
  ?registry:Mpas_obs.Metrics.t ->
  config -> Mpas_patterns.Cost.mesh_stats -> Plan.t -> Simulate.result
