open Mpas_patterns

type site = Host | Device | Adjustable

let site_name = function
  | Host -> "host"
  | Device -> "device"
  | Adjustable -> "adjustable"

type t = { plan_name : string; place : string -> site }

let cpu_only = { plan_name = "cpu-only"; place = (fun _ -> Host) }
let device_only = { plan_name = "device-only"; place = (fun _ -> Device) }

let kernel_level =
  (* Figure 2: the profiled heavy kernels (tendencies, diagnostics) go
     to the accelerator wholesale; the light state-update kernels stay
     on the CPU.  The resulting per-substep host/device ping-pong of
     tend and provis fields is exactly the "repeated data transfer"
     drawback the paper attributes to this design. *)
  let place id =
    match (Registry.instance id).Pattern.kernel with
    | Pattern.Compute_tend | Pattern.Compute_solve_diagnostics -> Device
    | Pattern.Enforce_boundary_edge | Pattern.Compute_next_substep_state
    | Pattern.Accumulative_update | Pattern.Mpas_reconstruct
    | Pattern.Halo_exchange ->
        Host
  in
  { plan_name = "kernel-level"; place }

let pattern_driven =
  let place = function
    (* Accumulation and the reconstruction pipeline live on the CPU
       (Figure 4b's gray boxes). *)
    | "X4" | "X5" | "A4" | "X6" -> Host
    (* Cell- and vertex-space diagnostics are the adjustable part. *)
    | "A2" | "A3" | "D1" | "C2" | "D2" | "E" | "H2" -> Adjustable
    (* Heavy edge-space stencils and the state update stay on the
       accelerator. *)
    | "A1" | "B1" | "C1" | "X1" | "X2" | "X3" | "B2" | "G" | "H1" | "F" ->
        Device
    | id -> invalid_arg ("Plan.pattern_driven: unknown instance " ^ id)
  in
  { plan_name = "pattern-driven"; place }

let check t =
  List.filter_map
    (fun (i : Pattern.instance) ->
      match t.place i.Pattern.id with
      | Host | Device | Adjustable -> None
      | exception e ->
          Some
            (Format.sprintf "plan %s fails on %s: %s" t.plan_name i.Pattern.id
               (Printexc.to_string e)))
    Registry.instances
