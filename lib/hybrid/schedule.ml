open Mpas_machine

open Mpas_patterns

type config = {
  node : Hw.node;
  params : Costmodel.params;
  host_flags : Costmodel.flags;
  device_flags : Costmodel.flags;
  split : float;
  offload_overhead_s : float;
  residency : bool;
}

let default_config ~split =
  {
    node = Hw.paper_node;
    params = Costmodel.default_params;
    host_flags = Costmodel.fully_optimized;
    device_flags = Costmodel.fully_optimized;
    split;
    (* Launch + sync of one offloaded region on KNC. *)
    offload_overhead_s = 120e-6;
    residency = true;
  }

(* Fraction of a field that crosses the link between two aligned split
   halves (the redundant-computation halo of §III-C). *)
let halo_fraction = 0.03

(* Where (and in what host fraction) a variable's data lives once its
   producer ran. *)
type residency = {
  host_part : float;  (** fraction of the field resident on the host *)
  producers : (string * float) list;
      (** producing task ids with the field fraction each wrote *)
}

let scale_work (w : Cost.work) f =
  { Cost.items = w.items *. f; flops = w.flops *. f; bytes = w.bytes *. f }

let instance_duration cfg stats (inst : Pattern.instance) ~on_host ~fraction =
  if fraction <= 0. then 0.
  else begin
    let work = scale_work (Cost.instance_work stats inst.Pattern.id) fraction in
    let stencil =
      match inst.Pattern.kind with
      | Pattern.Stencil _ -> true
      | Pattern.Local -> false
    in
    let device = if on_host then cfg.node.Hw.cpu else cfg.node.Hw.acc in
    let flags = if on_host then cfg.host_flags else cfg.device_flags in
    let launch = if on_host then 0. else cfg.offload_overhead_s in
    launch
    +. Costmodel.instance_time device cfg.params flags
         ~irregular:inst.Pattern.irregular ~stencil work
  end

(* Bytes a consumer portion must pull to the given side. *)
let transfer_bytes ~field_bytes ~(from : residency) ~need_host_part ~to_host =
  let available = if to_host then from.host_part else 1. -. from.host_part in
  let needed = if to_host then need_host_part else 1. -. need_host_part in
  if needed <= 0. then 0.
  else begin
    let missing = Float.max 0. (needed -. available) in
    let halo =
      (* Aligned splits still exchange a sliver across the cut. *)
      if from.host_part > 0. && from.host_part < 1. then
        halo_fraction *. needed
      else 0.
    in
    (missing +. halo) *. field_bytes
  end

let steady_state_site (plan : Plan.t) var =
  (* The last registry instance writing [var] determines where the
     variable lives at the start of a step. *)
  let producer =
    List.fold_left
      (fun acc (i : Pattern.instance) ->
        if List.mem var i.Pattern.outputs then Some i else acc)
      None Registry.instances
  in
  match producer with
  | None -> Plan.Host (* static data is mirrored; pick host *)
  | Some i -> plan.Plan.place i.Pattern.id

let step_tasks cfg stats (plan : Plan.t) =
  let f = Float.max 0. (Float.min 1. cfg.split) in
  let tasks = ref [] in
  let emit t = tasks := t :: !tasks in
  (* Residency environment: variable -> where its current value lives. *)
  let env : (string, residency) Hashtbl.t = Hashtbl.create 64 in
  (* Seed the environment with steady-state residency: zero-duration
     pseudo-tasks so transfers off the resident site are accounted. *)
  List.iter
    (fun (v : Registry.var) ->
      let site =
        if cfg.residency then steady_state_site plan v.Registry.var_name
        else Plan.Host
      in
      let tid = "resident:" ^ v.Registry.var_name in
      let host_part, producers =
        match site with
        | Plan.Host ->
            (1., [ (tid ^ "@h", 1.) ])
        | Plan.Device -> (0., [ (tid ^ "@d", 1.) ])
        | Plan.Adjustable -> (f, [ (tid ^ "@h", f); (tid ^ "@d", 1. -. f) ])
      in
      List.iter
        (fun (ptid, _) ->
          let resource =
            if String.length ptid > 2 && ptid.[String.length ptid - 1] = 'h'
            then Simulate.Host
            else Simulate.Device
          in
          emit { Simulate.tid = ptid; resource; duration = 0.; deps = [] })
        producers;
      Hashtbl.replace env v.Registry.var_name { host_part; producers })
    Registry.variables;

  let run_instance ~substep (inst : Pattern.instance) ~rename =
    let site = plan.Plan.place inst.Pattern.id in
    let host_part =
      match site with Plan.Host -> 1. | Plan.Device -> 0. | Plan.Adjustable -> f
    in
    let input_residency name =
      let name = rename name in
      match Hashtbl.find_opt env name with
      | Some r -> r
      | None -> { host_part = 1.; producers = [] }
    in
    let deps_for ~to_host ~need =
      if need <= 0. then []
      else
        List.concat_map
          (fun name ->
            let r = input_residency name in
            let fb = Cost.field_bytes stats (Registry.variable (rename name)).Registry.var_point in
            let bytes = transfer_bytes ~field_bytes:fb ~from:r ~need_host_part:(if to_host then need else 1. -. need) ~to_host in
            (* Depend on every producer of the variable; only charge
               the transfer once, on the first dep. *)
            List.mapi
              (fun k (ptid, _) -> (ptid, if k = 0 then bytes else 0.))
              r.producers)
          inst.Pattern.inputs
    in
    let mk_part ~on_host ~fraction =
      if fraction <= 0. then None
      else begin
        let suffix = if on_host then "@h" else "@d" in
        let tid = Format.sprintf "%s#%d%s" inst.Pattern.id substep suffix in
        let duration = instance_duration cfg stats inst ~on_host ~fraction in
        let deps = deps_for ~to_host:on_host ~need:fraction in
        emit
          {
            Simulate.tid;
            resource = (if on_host then Simulate.Host else Simulate.Device);
            duration;
            deps;
          };
        Some (tid, fraction)
      end
    in
    let producers =
      List.filter_map Fun.id
        [ mk_part ~on_host:true ~fraction:host_part;
          mk_part ~on_host:false ~fraction:(1. -. host_part) ]
    in
    if cfg.residency || host_part >= 1. then
      List.iter
        (fun out -> Hashtbl.replace env out { host_part; producers })
        inst.Pattern.outputs
    else begin
      (* On-demand transfer mode: device results are written back to
         the host immediately, and later consumers fetch from there
         again — the "repeated data transfer" of the kernel-level
         design (paper SS II-C / IV-A). *)
      let wb_bytes =
        List.fold_left
          (fun acc out ->
            acc
            +. (1. -. host_part)
               *. Cost.field_bytes stats
                    (Registry.variable out).Registry.var_point)
          0. inst.Pattern.outputs
      in
      let wb_tid = Format.sprintf "wb:%s#%d" inst.Pattern.id substep in
      (* Charge the write-back bytes against the first producer. *)
      let wb_deps =
        match producers with
        | (ptid, _) :: rest ->
            (ptid, wb_bytes) :: List.map (fun (t, _) -> (t, 0.)) rest
        | [] -> []
      in
      emit
        {
          Simulate.tid = wb_tid;
          resource = Simulate.Host;
          duration = 0.;
          deps = wb_deps;
        };
      List.iter
        (fun out ->
          Hashtbl.replace env out { host_part = 1.; producers = [ (wb_tid, 1.) ] })
        inst.Pattern.outputs
    end
  in

  let id x = x in
  (* Execution order of an instance subset comes from the data-flow
     diagram's ready-queue view (Graph.ready_order) instead of
     re-walking the registry kernel by kernel. *)
  let in_ready_order insts =
    let g = Mpas_dataflow.Graph.of_instances insts in
    List.map
      (fun (i, _) -> g.Mpas_dataflow.Graph.nodes.(i).Mpas_dataflow.Graph.instance)
      (Mpas_dataflow.Graph.ready_order g)
  in
  let of_kernels ks = List.concat_map Registry.of_kernel ks in
  for substep = 0 to 3 do
    let final = substep = 3 in
    if not final then
      List.iter
        (fun i -> run_instance ~substep i ~rename:id)
        (in_ready_order
           (of_kernels
              [ Pattern.Compute_tend; Pattern.Enforce_boundary_edge;
                Pattern.Compute_next_substep_state;
                Pattern.Compute_solve_diagnostics;
                Pattern.Accumulative_update ]))
    else begin
      (* Final substep: accumulate first, diagnose the new state, then
         reconstruct (Algorithm 1, lines 9-12). *)
      List.iter
        (fun i -> run_instance ~substep i ~rename:id)
        (in_ready_order
           (of_kernels
              [ Pattern.Compute_tend; Pattern.Enforce_boundary_edge;
                Pattern.Accumulative_update ]));
      let rename name =
        match name with
        | "provis_h" -> "h"
        | "provis_u" -> "u"
        | other -> other
      in
      List.iter
        (fun i -> run_instance ~substep i ~rename)
        (in_ready_order (Registry.of_kernel Pattern.Compute_solve_diagnostics));
      List.iter
        (fun i -> run_instance ~substep i ~rename:id)
        (in_ready_order (Registry.of_kernel Pattern.Mpas_reconstruct))
    end
  done;
  List.rev !tasks

let step_result cfg stats plan =
  Simulate.run ~link:cfg.node.Hw.link (step_tasks cfg stats plan)

let step_time cfg stats plan = (step_result cfg stats plan).Simulate.makespan

(* Total simulated time during which both lanes are busy at once — the
   overlap window the hybrid design exists to maximize.  Busy intervals
   on one resource never overlap each other (one task at a time), so
   summing pairwise intersections is exact. *)
let overlap (r : Simulate.result) =
  let lane res =
    List.filter_map
      (fun (e : Simulate.timeline_entry) ->
        if e.Simulate.entry_resource = res && e.Simulate.finish > e.Simulate.start
        then Some (e.Simulate.start, e.Simulate.finish)
        else None)
      r.Simulate.timeline
  in
  let host = lane Simulate.Host and device = lane Simulate.Device in
  List.fold_left
    (fun acc (h0, h1) ->
      List.fold_left
        (fun acc (d0, d1) ->
          acc +. Float.max 0. (Float.min h1 d1 -. Float.max h0 d0))
        acc device)
    0. host

let observe ?(registry = Mpas_obs.Metrics.default) cfg stats plan =
  let open Mpas_obs in
  let r = step_result cfg stats plan in
  let set name v = Metrics.Gauge.set (Metrics.gauge ~registry name) v in
  set "hybrid.split" cfg.split;
  set "hybrid.makespan_s" r.Simulate.makespan;
  set "hybrid.host_busy_s" r.Simulate.host_busy;
  set "hybrid.device_busy_s" r.Simulate.device_busy;
  set "hybrid.link_busy_s" r.Simulate.link_busy;
  set "hybrid.overlap_s" (overlap r);
  if Trace.enabled () then begin
    let args lane =
      [
        ("plan", plan.Plan.plan_name);
        ("split", Format.sprintf "%.3f" cfg.split);
        ("lane", lane);
      ]
    in
    List.iter
      (fun (e : Simulate.timeline_entry) ->
        if e.Simulate.finish > e.Simulate.start then
          let lane, tid =
            match e.Simulate.entry_resource with
            | Simulate.Host -> ("host", 1)
            | Simulate.Device -> ("device", 2)
          in
          Trace.emit ~cat:"hybrid" ~args:(args lane) ~tid
            ~ts_us:(1e6 *. e.Simulate.start)
            ~dur_us:(1e6 *. (e.Simulate.finish -. e.Simulate.start))
            e.Simulate.entry_tid)
      r.Simulate.timeline
  end;
  r

let optimize_split ?(grid = 40) cfg stats plan =
  let has_adjustable =
    List.exists
      (fun (i : Pattern.instance) ->
        plan.Plan.place i.Pattern.id = Plan.Adjustable)
      Registry.instances
  in
  if not has_adjustable then (0., step_time { cfg with split = 0. } stats plan)
  else begin
    let best = ref (0., Float.infinity) in
    for k = 0 to grid do
      let split = float_of_int k /. float_of_int grid in
      let t = step_time { cfg with split } stats plan in
      if t < snd !best then best := (split, t)
    done;
    !best
  end
