(** Batch-serving engine: many concurrent shallow-water simulations per
    process, advanced by member-strided kernel sweeps.

    One [t] owns a fixed-capacity pool of member slots over a single
    immutable mesh (and its memoized CSR).  Every field is one
    panelled (AoSoA) Bigarray slab ({!Mpas_swe.Strided.slab}) whose
    panel width is the member block, so a batch step is a sweep of the
    {!Mpas_swe.Strided} kernels: the mesh connectivity is loaded once
    per entity and applied to every member of a panel sitting on the
    same cache line — the batched-inference shape, where throughput
    comes from layout.

    Scheduling reuses the dataflow runtime: the RK-4 substep kernel
    chain compiles through {!Mpas_runtime.Batch} into phase programs
    whose parallel axis is the {e member block}, so any
    {!Mpas_runtime.Exec} mode (barrier, async, work stealing) spreads
    blocks over lanes.  Members are independent; blocks share no slots.

    Failure isolation: members only ever touch their own panel lanes,
    so a blow-up cannot poison neighbours.  After every step each
    running member's prognostic fields are scanned; a non-finite value
    or non-positive thickness flips the member to [Failed] and drops it
    from the [on] masks — the batch keeps going without it.

    Per-member physics: each member carries its own [Config.t] subset
    (gravity, APVM, [visc2], bottom drag, advection order, PV average),
    time step, bottom topography and Coriolis field ([f_vertex] slab),
    which is how perturbed Williamson cases — including the rotated
    Coriolis variants — batch together.  Unsupported configuration
    (tracers, [visc4], non-RK4 integrators) is rejected at submit with
    counted got/expected messages, like [Exchange.exchange] arity
    errors.

    Every member's trajectory is bit-identical to a solo run of the
    refactored engine with the same config, [dt] and initial state. *)

open Mpas_mesh
open Mpas_swe
open Mpas_runtime
open Mpas_par

type t

type status = Running | Done | Failed of string

val status_name : status -> string

type info = {
  i_id : int;  (** the handle [submit] returned *)
  i_tenant : string;
  i_status : status;
  i_steps : int;  (** completed batch steps for this member *)
  i_target : int option;  (** steps after which the member is [Done] *)
}

(** [create mesh] builds an empty engine.

    [capacity] (default 64) is the member-slot count — slab memory is
    allocated for all of it up front.  [block] (default 8) is the
    member-block size, the unit of parallel scheduling.  [mode]/[pool]
    select the runtime execution mode (default [Sequential], no pool);
    [log] receives the executor's task log for race replay.
    [registry] is where observability lands (default
    [Mpas_obs.Metrics.default]).

    [interrupt] and [preempt] are the serving layer's fault and
    eviction hooks, both called on the orchestrating domain only:
    [interrupt ~phase ~substep] fires before each substep phase
    launches and may raise (the fault-injection harness's kernel-raise
    point); [preempt] is forwarded to {!Mpas_runtime.Batch.run} and
    aborts the phase with {!Exec.Preempted} when it returns [true].
    Either way the sweep is abandoned mid-step and the batch slabs are
    left dirty — the caller must restore every affected member (e.g.
    from a checkpoint) before stepping again. *)
val create :
  ?registry:Mpas_obs.Metrics.t ->
  ?capacity:int ->
  ?block:int ->
  ?mode:Exec.mode ->
  ?pool:Pool.t ->
  ?log:Exec.log ->
  ?interrupt:(phase:[ `Early | `Final ] -> substep:int -> unit) ->
  ?preempt:(unit -> bool) ->
  Mesh.t ->
  t

val capacity : t -> int
val block : t -> int
val mesh : t -> Mesh.t

(** Members currently occupying slots (any status), oldest first. *)
val members : t -> info list

(** Running members / capacity, in [0, 1]. *)
val occupancy : t -> float

(** [submit t ~b state] places a member in a free slot and returns its
    handle.  [state] (tracerless) and [b] must match the engine mesh;
    [f_vertex] (default the mesh's own) carries Coriolis variants;
    [config] must use the RK-4 integrator, no [visc4], no tracer rows.
    Initial diagnostics are computed immediately, as [Model.init] does.
    [target] stops the member with status [Done] after that many steps.
    @raise Invalid_argument with a counted got/expected message on any
    shape or config mismatch, or when the batch is full. *)
val submit :
  t ->
  ?tenant:string ->
  ?config:Config.t ->
  ?target:int ->
  ?f_vertex:float array ->
  dt:float ->
  b:float array ->
  Fields.state ->
  int

(** [submit_case t case] initializes a member from a Williamson test
    case on the engine's (spherical) mesh: state and topography from
    [Williamson.init], Coriolis from [Williamson.prepare_mesh] (the
    rotated cases differ only there), [dt] defaulting to
    [Williamson.recommended_dt]. *)
val submit_case :
  t ->
  ?tenant:string ->
  ?config:Config.t ->
  ?dt:float ->
  ?target:int ->
  Williamson.case ->
  int

(** Advance every [Running] member by [n] RK-4 steps (default 1).
    Members that reach their target or fail drop out between steps. *)
val step : t -> ?n:int -> unit -> unit

(** @raise Not_found for ids never issued or already evicted. *)
val query : t -> int -> info

(** Copy out a member's prognostic state (tracerless). *)
val state : t -> int -> Fields.state

(** Overwrite a member's prognostic state in place (warm restart /
    perturbation injection) and recompute its diagnostics.  A [Failed]
    or [Done] member returns to [Running] with its step count kept.
    @raise Invalid_argument on shape mismatch, [Not_found] on a bad id. *)
val set_state : t -> int -> Fields.state -> unit

(** Free the member's slot.  @raise Not_found on a bad id. *)
val evict : t -> int -> unit

(** {2 Introspection for the static checkers} *)

(** The compiled member-axis phase programs (early runs substeps 0-2,
    final substep 3); passes [Spec.check]. *)
val spec : t -> Spec.t

type rw = Read | Write | Update

type access = { a_slot : string; a_point : Mpas_patterns.Pattern.point; a_rw : rw }

(** Declared slot accesses of one task.  Slot names are qualified by
    member block (["tend_u@b3"]), so tasks of different blocks share no
    slots — the member axis is conflict-free by construction, which
    [Analysis.Ens] verifies rather than assumes. *)
val task_accesses : t -> [ `Early | `Final ] -> task:int -> access list
