open Mpas_mesh
open Mpas_swe
open Mpas_runtime
open Mpas_par
module Pattern = Mpas_patterns.Pattern
module Metrics = Mpas_obs.Metrics
module A1 = Bigarray.Array1

type status = Running | Done | Failed of string

let status_name = function
  | Running -> "running"
  | Done -> "done"
  | Failed r -> "failed: " ^ r

type info = {
  i_id : int;
  i_tenant : string;
  i_status : status;
  i_steps : int;
  i_target : int option;
}

type rw = Read | Write | Update

type access = { a_slot : string; a_point : Pattern.point; a_rw : rw }

(* Everything the kernel bodies close over.  Built before the phase
   programs so the closures never see the engine record itself. *)
type env = {
  mesh : Mesh.t;
  nc : int;
  ne : int;
  nv : int;
  cap : int;
  blk : int;
  (* masks and per-member physics, indexed by slot *)
  on : bool array;  (** running members: stepped by every kernel *)
  on4 : bool array;  (** running ∧ fourth-order: d2fdx2's mask *)
  fourth : bool array;
  symmetric : bool array;
  dts : float array;
  gravity : float array;
  apvm : float array;
  visc2 : float array;
  drag : float array;
  (* panelled (AoSoA) slabs, panel width [blk] -- see {!Strided} *)
  sh : Strided.slab;  (** state h (cells) *)
  su : Strided.slab;  (** state u (edges) *)
  ph : Strided.slab;  (** provisional h *)
  pu : Strided.slab;
  ah : Strided.slab;  (** RK accumulator h *)
  au : Strided.slab;
  th : Strided.slab;  (** tend_h *)
  tu : Strided.slab;
  d2 : Strided.slab;
  he : Strided.slab;
  kes : Strided.slab;
  dvg : Strided.slab;
  vo : Strided.slab;
  hv : Strided.slab;
  pvv : Strided.slab;
  pvc : Strided.slab;
  vt : Strided.slab;
  gn : Strided.slab;
  gt : Strided.slab;
  pe : Strided.slab;
  bb : Strided.slab;  (** per-member bottom topography (cells) *)
  fv : Strided.slab;  (** per-member Coriolis (vertices) *)
  rk : int ref;  (** current substep, read by the bodies at call time *)
}

type slot = {
  s_id : int;
  s_tenant : string;
  s_target : int option;
  mutable s_status : status;
  mutable s_steps : int;
  c_stepped : Metrics.Counter.t;
  c_failed : Metrics.Counter.t;
  t_step : Metrics.Timer.t;
}

type kdef = {
  kd_id : string;
  kd_kernel : Pattern.kernel;
  kd_body : block:int -> unit -> unit;
  kd_acc : (string * Pattern.point * rw) list;
}

type t = {
  env : env;
  registry : Metrics.t;
  mode : Exec.mode;
  pool : Pool.t option;
  log : Exec.log option;
  interrupt : (phase:[ `Early | `Final ] -> substep:int -> unit) option;
  preempt : (unit -> bool) option;
  blocks : int;
  early_defs : kdef array;
  final_defs : kdef array;
  sp : Spec.t;
  early_bodies : (unit -> unit) array;
  final_bodies : (unit -> unit) array;
  slots : slot option array;
  by_id : (int, int) Hashtbl.t;  (** member id -> slot index *)
  mutable free : int list;
  mutable next_id : int;
  g_occupancy : Metrics.Gauge.t;
  c_batch_steps : Metrics.Counter.t;
  t_batch_step : Metrics.Timer.t;
}

(* --- kernel chains ------------------------------------------------------ *)

let block_range v ~block =
  let mlo = block * v.blk in
  let mhi = min v.cap ((block + 1) * v.blk) in
  (mlo, mhi)

(* The RK-4 substep chains, mirroring [Timestep.rk4_step] exactly.
   Early (substeps 0-2): tendencies of the provisional state, boundary,
   next provisional state, diagnostics of it, accumulate.  Final
   (substep 3): tendencies, boundary, accumulate, publish the
   accumulator into the state, diagnostics of the new state.  The
   diagnostic sub-chain differs between the phases only in which h/u
   slabs it reads. *)
let tend_defs v =
  let m = v.mesh and on = v.on in
  [
    {
      kd_id = "ens.tend_h";
      kd_kernel = Pattern.Compute_tend;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.tend_h m ~bw:v.blk ~on ~mlo ~mhi ~h_edge:v.he ~u:v.pu ~out:v.th);
      kd_acc =
        [
          ("h_edge", Pattern.Velocity, Read);
          ("provis_u", Pattern.Velocity, Read);
          ("tend_h", Pattern.Mass, Write);
        ];
    };
    {
      kd_id = "ens.tend_u";
      kd_kernel = Pattern.Compute_tend;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.tend_u m ~bw:v.blk ~on ~mlo ~mhi ~symmetric:v.symmetric
            ~gravity:v.gravity ~h:v.ph ~b:v.bb ~ke:v.kes ~h_edge:v.he ~u:v.pu
            ~pv_edge:v.pe ~out:v.tu);
      kd_acc =
        [
          ("provis_h", Pattern.Mass, Read);
          ("b", Pattern.Mass, Read);
          ("ke", Pattern.Mass, Read);
          ("h_edge", Pattern.Velocity, Read);
          ("provis_u", Pattern.Velocity, Read);
          ("pv_edge", Pattern.Velocity, Read);
          ("tend_u", Pattern.Velocity, Write);
        ];
    };
    {
      kd_id = "ens.dissipation";
      kd_kernel = Pattern.Compute_tend;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.dissipation m ~bw:v.blk ~on ~mlo ~mhi ~visc2:v.visc2 ~divergence:v.dvg
            ~vorticity:v.vo ~tend_u:v.tu);
      kd_acc =
        [
          ("divergence", Pattern.Mass, Read);
          ("vorticity", Pattern.Vorticity, Read);
          ("tend_u", Pattern.Velocity, Update);
        ];
    };
    {
      kd_id = "ens.local_forcing";
      kd_kernel = Pattern.Compute_tend;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.local_forcing m ~bw:v.blk ~on ~mlo ~mhi ~drag:v.drag ~u:v.pu
            ~tend_u:v.tu);
      kd_acc =
        [ ("provis_u", Pattern.Velocity, Read); ("tend_u", Pattern.Velocity, Update) ];
    };
    {
      kd_id = "ens.boundary";
      kd_kernel = Pattern.Enforce_boundary_edge;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.enforce_boundary_edge m ~bw:v.blk ~on ~mlo ~mhi ~tend_u:v.tu);
      kd_acc = [ ("tend_u", Pattern.Velocity, Update) ];
    };
  ]

(* Diagnostics of (h, u): provis slabs in the early phase, state slabs
   in the final one. *)
let diag_defs v ~h ~u ~h_name ~u_name =
  let m = v.mesh and on = v.on in
  [
    {
      kd_id = "ens.d2fdx2";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.d2fdx2 m ~bw:v.blk ~on:v.on4 ~mlo ~mhi ~h ~out:v.d2);
      kd_acc = [ (h_name, Pattern.Mass, Read); ("d2fdx2", Pattern.Mass, Write) ];
    };
    {
      kd_id = "ens.h_edge";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.h_edge m ~bw:v.blk ~on ~mlo ~mhi ~fourth:v.fourth ~h ~d2fdx2_cell:v.d2
            ~out:v.he);
      kd_acc =
        [
          (h_name, Pattern.Mass, Read);
          ("d2fdx2", Pattern.Mass, Read);
          ("h_edge", Pattern.Velocity, Write);
        ];
    };
    {
      kd_id = "ens.kinetic_energy";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.kinetic_energy m ~bw:v.blk ~on ~mlo ~mhi ~u ~out:v.kes);
      kd_acc = [ (u_name, Pattern.Velocity, Read); ("ke", Pattern.Mass, Write) ];
    };
    {
      kd_id = "ens.divergence";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.divergence m ~bw:v.blk ~on ~mlo ~mhi ~u ~out:v.dvg);
      kd_acc =
        [ (u_name, Pattern.Velocity, Read); ("divergence", Pattern.Mass, Write) ];
    };
    {
      kd_id = "ens.vorticity";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.vorticity m ~bw:v.blk ~on ~mlo ~mhi ~u ~out:v.vo);
      kd_acc =
        [ (u_name, Pattern.Velocity, Read); ("vorticity", Pattern.Vorticity, Write) ];
    };
    {
      kd_id = "ens.h_vertex";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.h_vertex m ~bw:v.blk ~on ~mlo ~mhi ~h ~out:v.hv);
      kd_acc =
        [ (h_name, Pattern.Mass, Read); ("h_vertex", Pattern.Vorticity, Write) ];
    };
    {
      kd_id = "ens.pv_vertex";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.pv_vertex m ~bw:v.blk ~on ~mlo ~mhi ~f_vertex:v.fv ~vorticity:v.vo
            ~h_vertex:v.hv ~out:v.pvv);
      kd_acc =
        [
          ("f_vertex", Pattern.Vorticity, Read);
          ("vorticity", Pattern.Vorticity, Read);
          ("h_vertex", Pattern.Vorticity, Read);
          ("pv_vertex", Pattern.Vorticity, Write);
        ];
    };
    {
      kd_id = "ens.pv_cell";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.pv_cell m ~bw:v.blk ~on ~mlo ~mhi ~pv_vertex:v.pvv ~out:v.pvc);
      kd_acc =
        [ ("pv_vertex", Pattern.Vorticity, Read); ("pv_cell", Pattern.Mass, Write) ];
    };
    {
      kd_id = "ens.tangential_velocity";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.tangential_velocity m ~bw:v.blk ~on ~mlo ~mhi ~u ~out:v.vt);
      kd_acc =
        [ (u_name, Pattern.Velocity, Read); ("v_tangential", Pattern.Velocity, Write) ];
    };
    {
      kd_id = "ens.grad_pv";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.grad_pv m ~bw:v.blk ~on ~mlo ~mhi ~pv_cell:v.pvc ~pv_vertex:v.pvv
            ~out_n:v.gn ~out_t:v.gt);
      kd_acc =
        [
          ("pv_cell", Pattern.Mass, Read);
          ("pv_vertex", Pattern.Vorticity, Read);
          ("grad_pv_n", Pattern.Velocity, Write);
          ("grad_pv_t", Pattern.Velocity, Write);
        ];
    };
    {
      kd_id = "ens.pv_edge";
      kd_kernel = Pattern.Compute_solve_diagnostics;
      kd_body =
        (fun ~block () ->
          let mlo, mhi = block_range v ~block in
          Strided.pv_edge m ~bw:v.blk ~on ~mlo ~mhi ~apvm_factor:v.apvm ~dt:v.dts
            ~pv_vertex:v.pvv ~grad_pv_n:v.gn ~grad_pv_t:v.gt ~u
            ~v_tangential:v.vt ~out:v.pe);
      kd_acc =
        [
          ("pv_vertex", Pattern.Vorticity, Read);
          ("grad_pv_n", Pattern.Velocity, Read);
          ("grad_pv_t", Pattern.Velocity, Read);
          (u_name, Pattern.Velocity, Read);
          ("v_tangential", Pattern.Velocity, Read);
          ("pv_edge", Pattern.Velocity, Write);
        ];
    };
  ]

let accumulate_def v =
  let m = v.mesh and on = v.on in
  {
    kd_id = "ens.accumulate";
    kd_kernel = Pattern.Accumulative_update;
    kd_body =
      (fun ~block () ->
        let mlo, mhi = block_range v ~block in
        Strided.accumulate m ~bw:v.blk ~on ~mlo ~mhi ~rk:!(v.rk) ~dt:v.dts ~tend_h:v.th
          ~tend_u:v.tu ~accum_h:v.ah ~accum_u:v.au);
    kd_acc =
      [
        ("tend_h", Pattern.Mass, Read);
        ("tend_u", Pattern.Velocity, Read);
        ("accum_h", Pattern.Mass, Update);
        ("accum_u", Pattern.Velocity, Update);
      ];
  }

let early_kdefs v =
  tend_defs v
  @ [
      {
        kd_id = "ens.next_substep";
        kd_kernel = Pattern.Compute_next_substep_state;
        kd_body =
          (fun ~block () ->
            let mlo, mhi = block_range v ~block in
            Strided.next_substep_state v.mesh ~bw:v.blk ~on:v.on ~mlo ~mhi ~rk:!(v.rk)
              ~dt:v.dts ~base_h:v.sh ~base_u:v.su ~tend_h:v.th ~tend_u:v.tu
              ~provis_h:v.ph ~provis_u:v.pu);
        kd_acc =
          [
            ("state_h", Pattern.Mass, Read);
            ("state_u", Pattern.Velocity, Read);
            ("tend_h", Pattern.Mass, Read);
            ("tend_u", Pattern.Velocity, Read);
            ("provis_h", Pattern.Mass, Write);
            ("provis_u", Pattern.Velocity, Write);
          ];
      };
    ]
  @ diag_defs v ~h:v.ph ~u:v.pu ~h_name:"provis_h" ~u_name:"provis_u"
  @ [ accumulate_def v ]

let final_kdefs v =
  tend_defs v
  @ [
      accumulate_def v;
      {
        kd_id = "ens.publish";
        kd_kernel = Pattern.Accumulative_update;
        kd_body =
          (fun ~block () ->
            let mlo, mhi = block_range v ~block in
            Strided.blit_state ~bw:v.blk ~on:v.on ~mlo ~mhi ~size:v.nc ~src:v.ah
              ~dst:v.sh;
            Strided.blit_state ~bw:v.blk ~on:v.on ~mlo ~mhi ~size:v.ne ~src:v.au
              ~dst:v.su);
        kd_acc =
          [
            ("accum_h", Pattern.Mass, Read);
            ("accum_u", Pattern.Velocity, Read);
            ("state_h", Pattern.Mass, Write);
            ("state_u", Pattern.Velocity, Write);
          ];
      };
    ]
  @ diag_defs v ~h:v.sh ~u:v.su ~h_name:"state_h" ~u_name:"state_u"

(* --- construction ------------------------------------------------------- *)

let create ?(registry = Metrics.default) ?(capacity = 64) ?(block = 8)
    ?(mode = Exec.Sequential) ?pool ?log ?interrupt ?preempt mesh =
  if capacity < 1 then
    invalid_arg
      (Printf.sprintf "Ensemble.create: capacity %d, need >= 1" capacity);
  if block < 1 then
    invalid_arg (Printf.sprintf "Ensemble.create: block %d, need >= 1" block);
  (* The member block is the slab panel width; a panel wider than the
     batch would only allocate dead lanes. *)
  let block = min block capacity in
  (* Validate the CSR once up front; every strided kernel leans on it. *)
  ignore (Mesh.csr mesh);
  let nc = mesh.Mesh.n_cells
  and ne = mesh.Mesh.n_edges
  and nv = mesh.Mesh.n_vertices in
  let cells () = Strided.alloc ~bw:block ~members:capacity ~size:nc
  and edges () = Strided.alloc ~bw:block ~members:capacity ~size:ne
  and verts () = Strided.alloc ~bw:block ~members:capacity ~size:nv in
  let env =
    {
      mesh;
      nc;
      ne;
      nv;
      cap = capacity;
      blk = block;
      on = Array.make capacity false;
      on4 = Array.make capacity false;
      fourth = Array.make capacity false;
      symmetric = Array.make capacity false;
      dts = Array.make capacity 0.;
      gravity = Array.make capacity 0.;
      apvm = Array.make capacity 0.;
      visc2 = Array.make capacity 0.;
      drag = Array.make capacity 0.;
      sh = cells ();
      su = edges ();
      ph = cells ();
      pu = edges ();
      ah = cells ();
      au = edges ();
      th = cells ();
      tu = edges ();
      d2 = cells ();
      he = edges ();
      kes = cells ();
      dvg = cells ();
      vo = verts ();
      hv = verts ();
      pvv = verts ();
      pvc = cells ();
      vt = edges ();
      gn = edges ();
      gt = edges ();
      pe = edges ();
      bb = cells ();
      fv = verts ();
      rk = ref 0;
    }
  in
  let blocks = (capacity + block - 1) / block in
  let to_batch kd =
    { Batch.bk_id = kd.kd_id; bk_kernel = kd.kd_kernel; bk_body = kd.kd_body }
  in
  let early_defs = Array.of_list (early_kdefs env) in
  let final_defs = Array.of_list (final_kdefs env) in
  let early, early_bodies =
    Batch.build ~kernels:(Array.to_list (Array.map to_batch early_defs)) ~blocks
  in
  let final, final_bodies =
    Batch.build ~kernels:(Array.to_list (Array.map to_batch final_defs)) ~blocks
  in
  {
    env;
    registry;
    mode;
    pool;
    log;
    interrupt;
    preempt;
    blocks;
    early_defs;
    final_defs;
    sp = { Spec.early; final };
    early_bodies;
    final_bodies;
    slots = Array.make capacity None;
    by_id = Hashtbl.create 64;
    free = List.init capacity (fun i -> i);
    next_id = 0;
    g_occupancy = Metrics.gauge ~registry "ensemble.occupancy";
    c_batch_steps = Metrics.counter ~registry "ensemble.batch_steps";
    t_batch_step = Metrics.timer ~registry "ensemble.batch_step";
  }

let capacity t = t.env.cap
let block t = t.env.blk
let mesh t = t.env.mesh
let spec t = t.sp

let info_of s =
  {
    i_id = s.s_id;
    i_tenant = s.s_tenant;
    i_status = s.s_status;
    i_steps = s.s_steps;
    i_target = s.s_target;
  }

let members t =
  Array.to_list t.slots
  |> List.filter_map (Option.map info_of)
  |> List.sort (fun a b -> compare a.i_id b.i_id)

let running_count t =
  Array.fold_left
    (fun n -> function Some { s_status = Running; _ } -> n + 1 | _ -> n)
    0 t.slots

let occupancy t = float_of_int (running_count t) /. float_of_int t.env.cap

let update_occupancy t =
  Metrics.Gauge.set t.g_occupancy (occupancy t)

(* --- submit ------------------------------------------------------------- *)

let check_counted what got expected =
  if got <> expected then
    invalid_arg
      (Printf.sprintf "Ensemble.submit: %s (got %d, expected %d)" what got
         expected)

let validate_config (cfg : Config.t) =
  (match cfg.integrator with
  | Config.Rk4 -> ()
  | Config.Ssprk3 ->
      invalid_arg
        "Ensemble.submit: integrator unsupported (got ssprk3, expected rk4)");
  if cfg.visc4 <> 0. then
    invalid_arg
      (Printf.sprintf
         "Ensemble.submit: del-4 dissipation unsupported (got visc4 = %g, \
          expected 0)"
         cfg.visc4)

(* Diagnostics of one member's state slabs, in [Timestep.
   compute_solve_diagnostics] order — run at submit/reset so the first
   tendency evaluation sees diagnostics matching the state, exactly as
   [Model.of_state] initializes a solo run. *)
let init_member_diagnostics t slot =
  let v = t.env in
  let only = Array.make v.cap false in
  only.(slot) <- true;
  let only4 = Array.make v.cap false in
  only4.(slot) <- v.fourth.(slot);
  let mlo = slot and mhi = slot + 1 in
  let m = v.mesh in
  Strided.d2fdx2 m ~bw:v.blk ~on:only4 ~mlo ~mhi ~h:v.sh ~out:v.d2;
  Strided.h_edge m ~bw:v.blk ~on:only ~mlo ~mhi ~fourth:v.fourth ~h:v.sh
    ~d2fdx2_cell:v.d2 ~out:v.he;
  Strided.kinetic_energy m ~bw:v.blk ~on:only ~mlo ~mhi ~u:v.su ~out:v.kes;
  Strided.divergence m ~bw:v.blk ~on:only ~mlo ~mhi ~u:v.su ~out:v.dvg;
  Strided.vorticity m ~bw:v.blk ~on:only ~mlo ~mhi ~u:v.su ~out:v.vo;
  Strided.h_vertex m ~bw:v.blk ~on:only ~mlo ~mhi ~h:v.sh ~out:v.hv;
  Strided.pv_vertex m ~bw:v.blk ~on:only ~mlo ~mhi ~f_vertex:v.fv ~vorticity:v.vo
    ~h_vertex:v.hv ~out:v.pvv;
  Strided.pv_cell m ~bw:v.blk ~on:only ~mlo ~mhi ~pv_vertex:v.pvv ~out:v.pvc;
  Strided.tangential_velocity m ~bw:v.blk ~on:only ~mlo ~mhi ~u:v.su ~out:v.vt;
  Strided.grad_pv m ~bw:v.blk ~on:only ~mlo ~mhi ~pv_cell:v.pvc ~pv_vertex:v.pvv
    ~out_n:v.gn ~out_t:v.gt;
  Strided.pv_edge m ~bw:v.blk ~on:only ~mlo ~mhi ~apvm_factor:v.apvm ~dt:v.dts
    ~pv_vertex:v.pvv ~grad_pv_n:v.gn ~grad_pv_t:v.gt ~u:v.su
    ~v_tangential:v.vt ~out:v.pe

let submit t ?(tenant = "default") ?(config = Config.default) ?target
    ?f_vertex ~dt ~b (state : Fields.state) =
  let v = t.env in
  validate_config config;
  check_counted "state.h cells" (Array.length state.Fields.h) v.nc;
  check_counted "state.u edges" (Array.length state.Fields.u) v.ne;
  check_counted "tracer rows" (Array.length state.Fields.tracers) 0;
  check_counted "b cells" (Array.length b) v.nc;
  let fvert = Option.value f_vertex ~default:v.mesh.Mesh.f_vertex in
  check_counted "f_vertex vertices" (Array.length fvert) v.nv;
  if dt <= 0. then
    invalid_arg (Printf.sprintf "Ensemble.submit: dt = %g, need > 0" dt);
  (match target with
  | Some n when n < 0 ->
      invalid_arg (Printf.sprintf "Ensemble.submit: target = %d, need >= 0" n)
  | _ -> ());
  let slot =
    match t.free with
    | [] ->
        invalid_arg
          (Printf.sprintf "Ensemble.submit: batch full (got %d members, \
                           expected < %d)"
             v.cap v.cap)
    | s :: rest ->
        t.free <- rest;
        s
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  Strided.fill_member v.sh ~bw:v.blk ~size:v.nc ~member:slot state.Fields.h;
  Strided.fill_member v.su ~bw:v.blk ~size:v.ne ~member:slot state.Fields.u;
  Strided.fill_member v.bb ~bw:v.blk ~size:v.nc ~member:slot b;
  Strided.fill_member v.fv ~bw:v.blk ~size:v.nv ~member:slot fvert;
  v.dts.(slot) <- dt;
  v.gravity.(slot) <- config.gravity;
  v.apvm.(slot) <- config.apvm_factor;
  v.visc2.(slot) <- config.visc2;
  v.drag.(slot) <- config.bottom_drag;
  v.fourth.(slot) <- (config.h_adv_order = Config.Fourth);
  v.symmetric.(slot) <- (config.pv_average = Config.Symmetric);
  v.on.(slot) <- true;
  v.on4.(slot) <- v.fourth.(slot);
  init_member_diagnostics t slot;
  let labels = [ ("tenant", tenant) ] in
  let s =
    {
      s_id = id;
      s_tenant = tenant;
      s_target = target;
      s_status = (if target = Some 0 then Done else Running);
      s_steps = 0;
      c_stepped =
        Metrics.counter ~registry:t.registry ~labels "ensemble.members_stepped";
      c_failed =
        Metrics.counter ~registry:t.registry ~labels "ensemble.member_failures";
      t_step = Metrics.timer ~registry:t.registry ~labels "ensemble.step";
    }
  in
  if s.s_status <> Running then begin
    v.on.(slot) <- false;
    v.on4.(slot) <- false
  end;
  t.slots.(slot) <- Some s;
  Hashtbl.replace t.by_id id slot;
  update_occupancy t;
  id

let submit_case t ?tenant ?(config = Config.default) ?dt ?target case =
  let m = t.env.mesh in
  let prepared = Williamson.prepare_mesh case m in
  let state, b = Williamson.init case prepared in
  let dt =
    match dt with Some d -> d | None -> Williamson.recommended_dt case m
  in
  submit t ?tenant ~config ?target ~f_vertex:prepared.Mesh.f_vertex ~dt ~b
    state

(* --- stepping ----------------------------------------------------------- *)

let slot_of t id =
  match Hashtbl.find_opt t.by_id id with
  | Some s -> s
  | None -> raise Not_found

(* Quarantine scan: non-finite h/u or non-positive thickness.  Members
   only write their own lanes, so a blow-up stays contained; this scan
   just records it so [step] can drop the member from the masks.  One
   entity-outer pass per panel — the lanes of a panel interleave, so a
   per-member walk would touch a full cache line per element where this
   sweep streams each line once.  Each member keeps its first finding
   (h before u, lowest entity first, non-finite before non-positive),
   matching what a per-member scan would report. *)
let scan_batch v =
  let res = Array.make v.cap None in
  let bw = v.blk in
  for p = 0 to ((v.cap + bw - 1) / bw) - 1 do
    let mb = p * bw in
    let mhi = min v.cap (mb + bw) in
    let cp = p * v.nc * bw in
    for c = 0 to v.nc - 1 do
      let ib = cp + (c * bw) in
      for mm = mb to mhi - 1 do
        if Array.unsafe_get v.on mm then
          match res.(mm) with
          | Some _ -> ()
          | None ->
              let h = A1.get v.sh (ib + mm - mb) in
              if
                Float.is_nan h || h = Float.infinity
                || h = Float.neg_infinity
              then res.(mm) <- Some (Printf.sprintf "non-finite h at cell %d" c)
              else if h <= 0. then
                res.(mm) <- Some (Printf.sprintf "non-positive h at cell %d" c)
      done
    done;
    let ep = p * v.ne * bw in
    for e = 0 to v.ne - 1 do
      let eb = ep + (e * bw) in
      for mm = mb to mhi - 1 do
        if Array.unsafe_get v.on mm then
          match res.(mm) with
          | Some _ -> ()
          | None ->
              let u = A1.get v.su (eb + mm - mb) in
              if
                Float.is_nan u || u = Float.infinity
                || u = Float.neg_infinity
              then res.(mm) <- Some (Printf.sprintf "non-finite u at edge %d" e)
      done
    done
  done;
  res

let instrument _ f = f ()

let sweep t =
  let v = t.env in
  let fire phase substep =
    match t.interrupt with None -> () | Some f -> f ~phase ~substep
  in
  (* Seed the accumulator and the provisional state; tracer-free, so
     this is the whole of the solo driver's pre-substep work. *)
  Strided.blit_state ~bw:v.blk ~on:v.on ~mlo:0 ~mhi:v.cap ~size:v.nc ~src:v.sh ~dst:v.ah;
  Strided.blit_state ~bw:v.blk ~on:v.on ~mlo:0 ~mhi:v.cap ~size:v.nc ~src:v.sh ~dst:v.ph;
  Strided.blit_state ~bw:v.blk ~on:v.on ~mlo:0 ~mhi:v.cap ~size:v.ne ~src:v.su ~dst:v.au;
  Strided.blit_state ~bw:v.blk ~on:v.on ~mlo:0 ~mhi:v.cap ~size:v.ne ~src:v.su ~dst:v.pu;
  for rk = 0 to 2 do
    v.rk := rk;
    fire `Early rk;
    Batch.run ?log:t.log ?preempt:t.preempt ~mode:t.mode ?pool:t.pool
      ~instrument ~phase:`Early ~substep:rk t.sp.Spec.early t.early_bodies
  done;
  v.rk := 3;
  fire `Final 3;
  Batch.run ?log:t.log ?preempt:t.preempt ~mode:t.mode ?pool:t.pool
    ~instrument ~phase:`Final ~substep:3 t.sp.Spec.final t.final_bodies

let step t ?(n = 1) () =
  let v = t.env in
  for _ = 1 to n do
    if running_count t > 0 then begin
      let t0 = Unix.gettimeofday () in
      sweep t;
      let dt_wall = Unix.gettimeofday () -. t0 in
      Metrics.Counter.incr t.c_batch_steps;
      Metrics.Timer.record t.t_batch_step dt_wall;
      let tenants_seen = Hashtbl.create 8 in
      let bad = scan_batch v in
      Array.iteri
        (fun slot s ->
          match s with
          | Some ({ s_status = Running; _ } as s) ->
              s.s_steps <- s.s_steps + 1;
              Metrics.Counter.incr s.c_stepped;
              if not (Hashtbl.mem tenants_seen s.s_tenant) then begin
                Hashtbl.add tenants_seen s.s_tenant ();
                Metrics.Timer.record s.t_step dt_wall
              end;
              (match bad.(slot) with
              | Some reason ->
                  s.s_status <- Failed reason;
                  Metrics.Counter.incr s.c_failed;
                  v.on.(slot) <- false;
                  v.on4.(slot) <- false
              | None -> (
                  match s.s_target with
                  | Some tgt when s.s_steps >= tgt ->
                      s.s_status <- Done;
                      v.on.(slot) <- false;
                      v.on4.(slot) <- false
                  | _ -> ()))
          | _ -> ())
        t.slots;
      update_occupancy t
    end
  done

(* --- query / mutation --------------------------------------------------- *)

let query t id =
  let slot = slot_of t id in
  match t.slots.(slot) with
  | Some s -> info_of s
  | None -> raise Not_found

let state t id =
  let slot = slot_of t id in
  let v = t.env in
  {
    Fields.h = Strided.read_member v.sh ~bw:v.blk ~size:v.nc ~member:slot;
    u = Strided.read_member v.su ~bw:v.blk ~size:v.ne ~member:slot;
    tracers = [||];
  }

let set_state t id (st : Fields.state) =
  let slot = slot_of t id in
  let v = t.env in
  check_counted "state.h cells" (Array.length st.Fields.h) v.nc;
  check_counted "state.u edges" (Array.length st.Fields.u) v.ne;
  check_counted "tracer rows" (Array.length st.Fields.tracers) 0;
  Strided.fill_member v.sh ~bw:v.blk ~size:v.nc ~member:slot st.Fields.h;
  Strided.fill_member v.su ~bw:v.blk ~size:v.ne ~member:slot st.Fields.u;
  (match t.slots.(slot) with
  | Some s ->
      s.s_status <- Running;
      v.on.(slot) <- true;
      v.on4.(slot) <- v.fourth.(slot)
  | None -> raise Not_found);
  init_member_diagnostics t slot;
  update_occupancy t

let evict t id =
  let slot = slot_of t id in
  t.slots.(slot) <- None;
  Hashtbl.remove t.by_id id;
  t.env.on.(slot) <- false;
  t.env.on4.(slot) <- false;
  t.free <- slot :: t.free;
  update_occupancy t

(* --- analysis hooks ----------------------------------------------------- *)

let task_accesses t phase ~task =
  let defs = match phase with `Early -> t.early_defs | `Final -> t.final_defs in
  let nk = Array.length defs in
  let b = task / nk and k = task mod nk in
  if b >= t.blocks || task < 0 then
    invalid_arg
      (Printf.sprintf "Ensemble.task_accesses: task %d of %d" task
         (t.blocks * nk));
  List.map
    (fun (name, point, arw) ->
      { a_slot = Printf.sprintf "%s@b%d" name b; a_point = point; a_rw = arw })
    defs.(k).kd_acc
