(** Loop-fusion analysis (paper §IV-F: "loop fusing ... by properly
    fusing adjacent computation patterns without affecting the data
    dependency in the data-flow diagram").

    Two consecutive instances of the same kernel can share one fused
    loop (and hence one parallel region) when they iterate over the
    same point space and their variable-level footprints
    ({!Mpas_patterns.Access}) admit it: the later instance must not
    stencil-read a chain output (the producing loop must complete
    before any neighbour is read), must not overwrite a variable an
    earlier member stencil-reads, and must not blindly overwrite a
    chain output it never reads back. *)

open Mpas_patterns

(** The footprint conflicts that forbid appending [next] to [chain]
    (earlier members first); empty when the accesses are compatible.
    Iteration spaces are checked separately by {!can_follow}. *)
val fusion_conflicts :
  chain:Pattern.instance list ->
  Pattern.instance ->
  Access.fusion_conflict list

(** [can_follow ~chain next]: may [next] join the fused loop already
    running [chain]?  True for the empty chain. *)
val can_follow : chain:Pattern.instance list -> Pattern.instance -> bool

(** Maximal fusable chains of one kernel, in execution order; each
    chain is a list of instance ids. *)
val chains : Pattern.kernel -> string list list

(** Chains of every kernel. *)
val all_chains : unit -> (Pattern.kernel * string list list) list

(** Parallel regions per RK-4 step before fusion (one per instance
    execution) and after (one per chain execution). *)
val regions_per_step : unit -> int * int
