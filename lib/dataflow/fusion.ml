open Mpas_patterns

(* Can [next] join a chain (earlier members first)?  Same iteration
   space, and the variable-level footprints must admit running [next]'s
   iteration inside the fused loop: no stencil-RAW, no stencil-WAR, no
   blind WAW (Access.fusion_conflicts). *)
let fusion_conflicts ~chain (next : Pattern.instance) =
  Access.fusion_conflicts
    ~chain:(List.map Access.of_instance chain)
    (Access.of_instance next)

let can_follow ~chain (next : Pattern.instance) =
  match chain with
  | [] -> true
  | first :: _ ->
      next.Pattern.spaces = first.Pattern.spaces
      && fusion_conflicts ~chain next = []

let chains kernel =
  let ids c = List.rev_map (fun (i : Pattern.instance) -> i.Pattern.id) c in
  let rec go current acc = function
    | [] -> List.rev (ids current :: acc)
    | (i : Pattern.instance) :: rest ->
        if current <> [] && can_follow ~chain:(List.rev current) i then
          go (i :: current) acc rest
        else begin
          let acc = if current = [] then acc else ids current :: acc in
          go [ i ] acc rest
        end
  in
  match Registry.of_kernel kernel with
  | [] -> []
  | instances -> go [] [] instances

let all_chains () = List.map (fun k -> (k, chains k)) Pattern.all_kernels

let regions_per_step () =
  List.fold_left
    (fun (before, after) kernel ->
      let calls = Cost.kernel_calls_per_step kernel in
      let instances = List.length (Registry.of_kernel kernel) in
      let fused = List.length (chains kernel) in
      (before + (calls * instances), after + (calls * fused)))
    (0, 0) Pattern.all_kernels
