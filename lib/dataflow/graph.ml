open Mpas_patterns
type node = { instance : Pattern.instance; index : int }
type dep = { src : int; dst : int; var : string }

type t = {
  nodes : node array;
  deps : dep list;
  sources : (int * string) list;
}

let of_instances instances =
  let nodes =
    Array.of_list (List.mapi (fun index instance -> { instance; index }) instances)
  in
  (* Walk in execution order, tracking the last writer of each
     variable.  An instance that both reads and writes a variable (the
     accumulations) depends on the previous writer, then becomes the
     writer itself. *)
  let last_writer = Hashtbl.create 32 in
  let deps = ref [] and sources = ref [] in
  Array.iter
    (fun n ->
      List.iter
        (fun var ->
          match Hashtbl.find_opt last_writer var with
          | Some src when src <> n.index ->
              deps := { src; dst = n.index; var } :: !deps
          | Some _ -> ()
          | None -> sources := (n.index, var) :: !sources)
        n.instance.Pattern.inputs;
      List.iter
        (fun var -> Hashtbl.replace last_writer var n.index)
        n.instance.Pattern.outputs)
    nodes;
  { nodes; deps = List.rev !deps; sources = List.rev !sources }

let build () = of_instances Registry.instances
let n_nodes t = Array.length t.nodes

let preds t i =
  List.filter_map (fun d -> if d.dst = i then Some d.src else None) t.deps
  |> List.sort_uniq compare

let succs t i =
  List.filter_map (fun d -> if d.src = i then Some d.dst else None) t.deps
  |> List.sort_uniq compare

let topological_order t =
  (* Construction guarantees src < dst; verify and return the identity
     order. *)
  List.iter
    (fun d -> if d.src >= d.dst then invalid_arg "Graph: not topological")
    t.deps;
  List.init (n_nodes t) Fun.id

let ready_order t =
  List.map (fun i -> (i, List.length (preds t i))) (topological_order t)

let levels t =
  let l = Array.make (n_nodes t) 0 in
  List.iter
    (fun i -> l.(i) <- Int.max l.(i) 0)
    (topological_order t);
  List.iter (fun d -> l.(d.dst) <- Int.max l.(d.dst) (l.(d.src) + 1)) t.deps;
  l

let level_sets t =
  let l = levels t in
  let depth = Array.fold_left Int.max 0 l + 1 in
  let sets = Array.make depth [] in
  for i = n_nodes t - 1 downto 0 do
    sets.(l.(i)) <- i :: sets.(l.(i))
  done;
  sets

let critical_path t ~weight =
  let finish = Array.make (n_nodes t) 0. in
  List.iter
    (fun i ->
      let start =
        List.fold_left (fun acc p -> Float.max acc finish.(p)) 0. (preds t i)
      in
      finish.(i) <- start +. weight t.nodes.(i))
    (topological_order t);
  Array.fold_left Float.max 0. finish

let check t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let n = n_nodes t in
  List.iter
    (fun d ->
      if d.src < 0 || d.src >= n || d.dst < 0 || d.dst >= n then
        err "dep %s out of range" d.var;
      if d.src >= d.dst then err "dep on %s violates execution order" d.var)
    t.deps;
  (* Every non-state input must be a dep or a source. *)
  Array.iter
    (fun node ->
      List.iter
        (fun var ->
          let as_dep =
            List.exists (fun d -> d.dst = node.index && d.var = var) t.deps
          in
          let as_source = List.mem (node.index, var) t.sources in
          if not (as_dep || as_source) then
            err "input %s of %s unaccounted" var node.instance.Pattern.id)
        node.instance.Pattern.inputs)
    t.nodes;
  (* Source variables must be state or diagnostics from the previous
     substep, i.e. declared in the registry. *)
  List.iter
    (fun (_, var) ->
      match Registry.variable var with
      | _ -> ()
      | exception Not_found -> err "source %s is not a declared variable" var)
    t.sources;
  List.rev !errors
