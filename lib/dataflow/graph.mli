open Mpas_patterns
(** The data-flow diagram of the model (paper §III-B, Figure 4).

    Nodes are pattern instances; a directed edge [p -> q] means [q]
    reads a variable whose most recent writer in Algorithm 1 execution
    order is [p].  Variables never written earlier in the sequence are
    {e sources} — state carried in from the previous RK substep (the
    diagnostics feeding compute_tend are last written by the previous
    substep's compute_solve_diagnostics, which is why the diagram can
    be cut between accumulative_update and the next compute_tend).

    The graph is a DAG by construction; levels and the critical path
    expose the inherent parallelism the hybrid scheduler exploits. *)

type node = {
  instance : Pattern.instance;
  index : int;  (** position in execution order *)
}

type dep = {
  src : int;  (** producer node index *)
  dst : int;  (** consumer node index *)
  var : string;  (** the variable carried *)
}

type t = {
  nodes : node array;
  deps : dep list;
  sources : (int * string) list;
      (** (consumer, variable) pairs read from the previous substep *)
}

(** Build the diagram from the full registry. *)
val build : unit -> t

(** Build from a subset of instances (kept in registry order). *)
val of_instances : Pattern.instance list -> t

val n_nodes : t -> int

(** Direct predecessors / successors of a node. *)
val preds : t -> int -> int list

val succs : t -> int -> int list

(** Topological order (indices; trivially increasing by construction,
    provided as a checked accessor). *)
val topological_order : t -> int list

(** Topological order annotated with each node's indegree (number of
    distinct producers) — the ready-queue view of the diagram: a node
    may start once that many predecessors have finished.  Consumed by
    [Hybrid.Schedule] for task emission and by the task runtime
    ([Mpas_runtime]) to seed its dependency counters. *)
val ready_order : t -> (int * int) list

(** ASAP level of each node: source nodes are level 0, otherwise
    1 + max level of predecessors. *)
val levels : t -> int array

(** Nodes grouped by level — each group is an independent set (the
    paper's red-numbered concurrency). *)
val level_sets : t -> int list array

(** Critical-path length through the DAG weighted by
    [weight node]. *)
val critical_path : t -> weight:(node -> float) -> float

(** Structural validation: acyclicity, no dangling dep endpoints,
    every non-state input accounted for (as a dep or a source).
    Returns violations, empty when well formed. *)
val check : t -> string list
