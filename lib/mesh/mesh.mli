(** The MPAS-style unstructured C-grid mesh.

    Three families of mesh points carry the model variables (paper
    Figure 1):
    - {e cells} (Voronoi polygons) hold mass-point variables,
    - {e edges} hold velocity-point variables (the normal component),
    - {e vertices} (Delaunay-triangle circumcenters) hold
      vorticity-point variables.

    The record mirrors the connectivity and geometry arrays of the MPAS
    mesh specification ([cellsOnEdge], [edgesOnCell], [weightsOnEdge],
    [kiteAreasOnVertex], ...), with 0-based indices.

    Conventions:
    - For edge [e], [cells_on_edge.(e) = [|c1; c2|]] and the unit normal
      [edge_normal.(e)] points from [c1] toward [c2].
    - [edge_tangent.(e) = k x n] where [k] is the local vertical; the
      two vertices are ordered so the tangent points from vertex 1 to
      vertex 2.
    - [edges_on_cell.(c)] lists edges counter-clockwise (seen from
      outside the sphere); [cells_on_cell.(c).(j)] is the neighbour
      across edge [j]; [vertices_on_cell.(c).(j)] is the corner shared
      by edges [j] and [j+1 mod n].
    - [cells_on_vertex.(v)] is counter-clockwise;
      [edges_on_vertex.(v).(k)] joins cells [k] and [k+1 mod 3], and
      [edge_sign_on_vertex.(v).(k)] is [+1.] when that edge's normal
      follows the counter-clockwise traversal. *)

open Mpas_numerics

type geometry =
  | Sphere of float  (** radius in meters *)
  | Plane of { lx : float; ly : float }  (** doubly periodic box *)

(** Packed compressed-sparse-row view of the connectivity, built once
    per mesh (see {!csr}).  Ragged families with a variable row width
    (the per-cell and edges-on-edge tables) are [offsets]/[data] pairs:
    row [i] of table [x] occupies [x.(offsets.(i)) ..
    x.(offsets.(i+1) - 1)].  Fixed-degree families are flat with an
    implicit stride: 3 entries per vertex, 2 per edge.  Entries are in
    the exact order of the corresponding ragged arrays, so a flat index
    [offsets.(i) + j] aliases ragged element [(i, j)]. *)
type csr = {
  cell_offsets : int array;  (** [n_cells + 1] row starts *)
  cell_edges : int array;  (** [edges_on_cell], packed *)
  cell_neighbors : int array;  (** [cells_on_cell], packed *)
  cell_vertices : int array;  (** [vertices_on_cell], packed *)
  cell_edge_signs : float array;  (** [edge_sign_on_cell], packed *)
  vertex_edges : int array;  (** [edges_on_vertex], stride 3 *)
  vertex_cells : int array;  (** [cells_on_vertex], stride 3 *)
  vertex_kite_areas : float array;  (** [kite_areas_on_vertex], stride 3 *)
  vertex_edge_signs : float array;  (** [edge_sign_on_vertex], stride 3 *)
  edge_cells : int array;  (** [cells_on_edge], stride 2 *)
  edge_vertices : int array;  (** [vertices_on_edge], stride 2 *)
  eoe_offsets : int array;  (** [n_edges + 1] row starts *)
  eoe_edges : int array;  (** [edges_on_edge], packed *)
  eoe_weights : float array;  (** [weights_on_edge], packed *)
}

type t = {
  geometry : geometry;
  n_cells : int;
  n_edges : int;
  n_vertices : int;
  max_edges : int;  (** maximum [n_edges_on_cell] *)
  (* positions *)
  x_cell : Vec3.t array;
  x_edge : Vec3.t array;
  x_vertex : Vec3.t array;
  lon_cell : float array;
  lat_cell : float array;
  lon_edge : float array;
  lat_edge : float array;
  lon_vertex : float array;
  lat_vertex : float array;
  (* connectivity *)
  n_edges_on_cell : int array;
  edges_on_cell : int array array;
  cells_on_cell : int array array;
  vertices_on_cell : int array array;
  cells_on_edge : int array array;
  vertices_on_edge : int array array;
  edges_on_vertex : int array array;
  cells_on_vertex : int array array;
  n_edges_on_edge : int array;
  edges_on_edge : int array array;
  weights_on_edge : float array array;
  (* geometry *)
  dc_edge : float array;  (** distance between the two adjacent cells *)
  dv_edge : float array;  (** distance between the two adjacent vertices *)
  area_cell : float array;
  area_triangle : float array;
  kite_areas_on_vertex : float array array;
      (** aligned with [cells_on_vertex] *)
  edge_normal : Vec3.t array;
  edge_tangent : Vec3.t array;
  angle_edge : float array;  (** angle of the normal w.r.t. local east *)
  edge_sign_on_cell : float array array;
      (** [+1.] when the edge normal is outward from the cell *)
  edge_sign_on_vertex : float array array;
  (* physics *)
  f_cell : float array;  (** Coriolis parameter at mass points *)
  f_edge : float array;
  f_vertex : float array;
  boundary_edge : bool array;
  mutable csr_cache : csr option;
      (** memoized {!csr} view; builders initialize it eagerly, meshes
          deserialized or assembled by hand start at [None] and build on
          first use *)
}

(** Total area of the domain: [4 pi r^2] for a sphere, [lx * ly] for a
    periodic plane. *)
val domain_area : t -> float

(** Mean cell-to-cell spacing [mean dc_edge], a proxy for resolution. *)
val mean_spacing : t -> float

(** [with_boundary_edges t pred] is a copy of [t] whose boundary mask is
    [pred e] for every edge; connectivity and geometry are shared. *)
val with_boundary_edges : t -> (int -> bool) -> t

(** [with_coriolis t f] is a copy of [t] whose Coriolis arrays are
    re-evaluated as [f position]; used by the rotated test cases. *)
val with_coriolis : t -> (Vec3.t -> float) -> t

(** Structural invariant check.  Returns the list of violated
    invariants (empty when the mesh is well formed):
    Euler characteristic, symmetric adjacency, sign-array consistency,
    kite partition of triangle and cell areas, vertex/edge ordering
    conventions. *)
val check : ?area_tol:float -> t -> string list

(** Fold over the edges of one cell: [fold_edges_on_cell t c f init]. *)
val fold_edges_on_cell : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

(** Find the local index of edge [e] on cell [c].
    @raise Not_found if [e] is not an edge of [c]. *)
val edge_index_on_cell : t -> c:int -> e:int -> int

(** The packed CSR view of the connectivity (memoized on the mesh).
    The first call flattens the ragged arrays and validates the result
    with {!Csr.validate}; this single up-front validation is what lets
    the hot kernels in [Mpas_swe.Operators] walk the tables with
    [Array.unsafe_get].
    @raise Invalid_argument when validation fails. *)
val csr : t -> csr

(** Typed validation of the CSR invariants the unsafe-indexed kernels
    rely on.  Each error names the offending table, so the bounds
    auditor of [Mpas_analysis] can discharge an unsafe index against
    exactly the invariants that cover it. *)
module Csr : sig
  type error =
    | Offsets_shape of { table : string; detail : string }
        (** offsets array malformed: wrong count, does not start at 0,
            or not monotone *)
    | Row_width of { table : string; row : int; got : int; expected : int }
        (** a ragged or fixed-degree row has the wrong width *)
    | Length_mismatch of { table : string; got : int; expected : int }
        (** a flat/strided/geometry array has the wrong total length *)
    | Out_of_range of { table : string; pos : int; got : int; bound : int }
        (** a connectivity entry indexes outside its target space *)
    | Missing_back_link of { vertex : int; cell : int }
        (** a cell's vertex does not list the cell among its three
            (breaks the pv_cell kite lookup) *)

  (** The table an error is about, if any. *)
  val error_table : error -> string option

  val message : error -> string

  (** All violations of the CSR invariants: offsets start at 0 and are
      monotone, [offsets.(n)] equals the data length, row widths match
      [n_edges_on_cell] / [n_edges_on_edge] and the fixed vertex/edge
      degrees, every index is within its range, the geometry arrays
      dereferenced through CSR indices have full length, and each
      cell's vertices link back to the cell.  Empty for a well-formed
      mesh. *)
  val validate : t -> csr -> error list
end

(** {!Csr.validate} rendered as strings, for error reporting. *)
val csr_errors : t -> csr -> string list
