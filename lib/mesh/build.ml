open Mpas_numerics

let earth_omega = 7.292e-5

(* Angle of the tangent-plane direction [d] at point [p], measured
   counter-clockwise from local east (seen from outside the sphere).
   At the poles east is undefined; an arbitrary tangent direction works
   for sorting, but the second axis must be [p x east] so the
   orientation stays counter-clockwise from outside — with a fixed
   (ex, ey) pair the south-pole ordering would silently reverse and
   corrupt that cell's kite walk and TRiSK weights. *)
let tangent_angle p d =
  let east, north =
    match Sphere.tangent_basis p with
    | basis -> basis
    | exception Invalid_argument _ ->
        let east = Vec3.ex in
        (east, Vec3.cross p east)
  in
  atan2 (Vec3.dot d north) (Vec3.dot d east)

(* The vertex shared by edges [e1] and [e2].
   @raise Not_found when they share none. *)
let shared_vertex vertices_on_edge e1 e2 =
  let a = vertices_on_edge.(e1) and b = vertices_on_edge.(e2) in
  if a.(0) = b.(0) || a.(0) = b.(1) then a.(0)
  else if a.(1) = b.(0) || a.(1) = b.(1) then a.(1)
  else raise Not_found

let of_triangulation ?(radius = Sphere.earth_radius)
    ?(coriolis = fun p -> 2. *. earth_omega *. p.Vec3.z) (tri : Icosphere.t) =
  let n_cells = Array.length tri.points in
  let n_vertices = Array.length tri.triangles in
  let x_cell = tri.points in

  (* Enforce counter-clockwise triangles (seen from outside). *)
  let triangles =
    Array.map
      (fun (a, b, c) ->
        if Vec3.triple x_cell.(a) x_cell.(b) x_cell.(c) >= 0. then (a, b, c)
        else (a, c, b))
      tri.triangles
  in

  (* --- primal edges --------------------------------------------------- *)
  let edge_ids = Hashtbl.create (3 * n_vertices) in
  let edge_cells = ref [] in
  let n_edges = ref 0 in
  let edge_of a b =
    let key = (Int.min a b, Int.max a b) in
    match Hashtbl.find_opt edge_ids key with
    | Some e -> e
    | None ->
        let e = !n_edges in
        incr n_edges;
        Hashtbl.add edge_ids key e;
        edge_cells := key :: !edge_cells;
        e
  in
  let cells_on_vertex = Array.map (fun (a, b, c) -> [| a; b; c |]) triangles in
  (* edges_on_vertex.(v).(k) joins cells k and (k+1) mod 3 of vertex v. *)
  let edges_on_vertex =
    Array.map
      (fun (a, b, c) -> [| edge_of a b; edge_of b c; edge_of c a |])
      triangles
  in
  let n_edges = !n_edges in
  let cells_on_edge =
    let arr = Array.make n_edges [||] in
    List.iteri
      (fun i (a, b) -> arr.(n_edges - 1 - i) <- [| a; b |])
      !edge_cells;
    arr
  in

  (* --- vertices on edge ----------------------------------------------- *)
  let vertices_on_edge = Array.make n_edges [| -1; -1 |] in
  Array.iteri
    (fun v edges ->
      Array.iter
        (fun e ->
          let ve = vertices_on_edge.(e) in
          if ve.(0) = -1 then vertices_on_edge.(e) <- [| v; -1 |]
          else if ve.(1) = -1 then vertices_on_edge.(e) <- [| ve.(0); v |]
          else invalid_arg "Build: edge with more than two triangles")
        edges)
    edges_on_vertex;
  Array.iteri
    (fun e ve ->
      if ve.(0) = -1 || ve.(1) = -1 then
        invalid_arg
          (Format.sprintf "Build: edge %d is on the boundary (open surface)" e))
    vertices_on_edge;

  (* --- vertex positions (circumcenters) ------------------------------- *)
  let x_vertex =
    Array.map
      (fun (a, b, c) -> Sphere.circumcenter x_cell.(a) x_cell.(b) x_cell.(c))
      triangles
  in

  (* --- edges around each cell, counter-clockwise ---------------------- *)
  let incident = Array.make n_cells [] in
  Array.iteri
    (fun e ce ->
      incident.(ce.(0)) <- e :: incident.(ce.(0));
      incident.(ce.(1)) <- e :: incident.(ce.(1)))
    cells_on_edge;
  let other_cell e c =
    let ce = cells_on_edge.(e) in
    if ce.(0) = c then ce.(1) else ce.(0)
  in
  let edges_on_cell =
    Array.init n_cells (fun c ->
        let p = x_cell.(c) in
        let angle e =
          tangent_angle p (Vec3.sub x_cell.(other_cell e c) p)
        in
        let edges = Array.of_list incident.(c) in
        Array.sort (fun a b -> compare (angle a) (angle b)) edges;
        edges)
  in
  let n_edges_on_cell = Array.map Array.length edges_on_cell in
  let max_edges = Array.fold_left Int.max 0 n_edges_on_cell in
  let cells_on_cell =
    Array.mapi
      (fun c edges -> Array.map (fun e -> other_cell e c) edges)
      edges_on_cell
  in
  let vertices_on_cell =
    Array.mapi
      (fun c edges ->
        let n = n_edges_on_cell.(c) in
        Array.init n (fun j ->
            shared_vertex vertices_on_edge edges.(j) edges.((j + 1) mod n)))
      edges_on_cell
  in

  (* --- edge geometry --------------------------------------------------- *)
  let x_edge =
    Array.map
      (fun ce -> Sphere.geodesic_midpoint x_cell.(ce.(0)) x_cell.(ce.(1)))
      cells_on_edge
  in
  let dc_edge =
    Array.map
      (fun ce -> radius *. Sphere.arc_length x_cell.(ce.(0)) x_cell.(ce.(1)))
      cells_on_edge
  in
  let edge_normal =
    Array.mapi
      (fun e ce ->
        let d = Vec3.sub x_cell.(ce.(1)) x_cell.(ce.(0)) in
        Vec3.normalize (Sphere.project_tangent x_edge.(e) d))
      cells_on_edge
  in
  let edge_tangent =
    Array.mapi (fun e n -> Vec3.cross x_edge.(e) n) edge_normal
  in
  (* Order the edge's vertices along the tangent. *)
  Array.iteri
    (fun e ve ->
      let d = Vec3.sub x_vertex.(ve.(1)) x_vertex.(ve.(0)) in
      if Vec3.dot d edge_tangent.(e) < 0. then
        vertices_on_edge.(e) <- [| ve.(1); ve.(0) |])
    vertices_on_edge;
  let dv_edge =
    Array.map
      (fun ve ->
        radius *. Sphere.arc_length x_vertex.(ve.(0)) x_vertex.(ve.(1)))
      vertices_on_edge
  in
  let angle_edge =
    Array.mapi (fun e n -> tangent_angle x_edge.(e) n) edge_normal
  in

  (* --- areas ----------------------------------------------------------- *)
  let r2 = radius *. radius in
  let area_cell =
    Array.init n_cells (fun c ->
        let corners = Array.map (fun v -> x_vertex.(v)) vertices_on_cell.(c) in
        r2 *. Sphere.polygon_area corners)
  in
  let area_triangle =
    Array.map
      (fun (a, b, c) ->
        r2 *. Sphere.triangle_area x_cell.(a) x_cell.(b) x_cell.(c))
      triangles
  in
  let kite_areas_on_vertex =
    Array.init n_vertices (fun v ->
        Array.init 3 (fun k ->
            let c = cells_on_vertex.(v).(k) in
            (* Edges of triangle v incident to cell k: edge k joins
               cells k,k+1 and edge (k+2) mod 3 joins cells k+2,k. *)
            let e_next = edges_on_vertex.(v).(k) in
            let e_prev = edges_on_vertex.(v).((k + 2) mod 3) in
            let quad =
              [| x_cell.(c); x_edge.(e_next); x_vertex.(v); x_edge.(e_prev) |]
            in
            r2 *. Sphere.polygon_area quad))
  in

  (* --- sign arrays ------------------------------------------------------ *)
  let edge_sign_on_cell =
    Array.mapi
      (fun c edges ->
        Array.map
          (fun e -> if cells_on_edge.(e).(0) = c then 1. else -1.)
          edges)
      edges_on_cell
  in
  let edge_sign_on_vertex =
    Array.init n_vertices (fun v ->
        Array.init 3 (fun k ->
            let e = edges_on_vertex.(v).(k) in
            let c_from = cells_on_vertex.(v).(k) in
            if cells_on_edge.(e).(0) = c_from then 1. else -1.))
  in

  (* --- TRiSK tangential-reconstruction weights -------------------------- *)
  let edges_on_edge, weights_on_edge =
    Trisk.weights
      {
        Trisk.n_edges;
        cells_on_edge;
        n_edges_on_cell;
        edges_on_cell;
        vertices_on_cell;
        cells_on_vertex;
        kite_areas_on_vertex;
        area_cell;
        dc_edge;
        dv_edge;
        edge_sign_on_cell;
      }
  in
  let n_edges_on_edge = Array.map Array.length edges_on_edge in

  (* --- coordinates and physics ------------------------------------------ *)
  let lonlat xs = Array.map Sphere.to_lonlat xs in
  let ll_cell = lonlat x_cell
  and ll_edge = lonlat x_edge
  and ll_vertex = lonlat x_vertex in
  let m = {
    Mesh.geometry = Mesh.Sphere radius;
    n_cells;
    n_edges;
    n_vertices;
    max_edges;
    x_cell;
    x_edge;
    x_vertex;
    lon_cell = Array.map fst ll_cell;
    lat_cell = Array.map snd ll_cell;
    lon_edge = Array.map fst ll_edge;
    lat_edge = Array.map snd ll_edge;
    lon_vertex = Array.map fst ll_vertex;
    lat_vertex = Array.map snd ll_vertex;
    n_edges_on_cell;
    edges_on_cell;
    cells_on_cell;
    vertices_on_cell;
    cells_on_edge;
    vertices_on_edge;
    edges_on_vertex;
    cells_on_vertex;
    n_edges_on_edge;
    edges_on_edge;
    weights_on_edge;
    dc_edge;
    dv_edge;
    area_cell;
    area_triangle;
    kite_areas_on_vertex;
    edge_normal;
    edge_tangent;
    angle_edge;
    edge_sign_on_cell;
    edge_sign_on_vertex;
    f_cell = Array.map coriolis x_cell;
    f_edge = Array.map coriolis x_edge;
    f_vertex = Array.map coriolis x_vertex;
    boundary_edge = Array.make n_edges false;
    csr_cache = None;
  }
  in
  (* Build (and validate) the packed connectivity view up front so the
     unsafe-indexed kernel fast paths never race the memoization. *)
  ignore (Mesh.csr m : Mesh.csr);
  m

let icosahedral ?(radius = Sphere.earth_radius) ?(omega = earth_omega)
    ?(lloyd_iters = 0) ?density ?over_relax ~level () =
  let tri = Icosphere.create ~level in
  let tri = Icosphere.relax ?density ?over_relax ~iters:lloyd_iters tri in
  let coriolis p = 2. *. omega *. p.Vec3.z in
  of_triangulation ~radius ~coriolis tri
