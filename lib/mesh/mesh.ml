open Mpas_numerics

type geometry = Sphere of float | Plane of { lx : float; ly : float }

type csr = {
  cell_offsets : int array;
  cell_edges : int array;
  cell_neighbors : int array;
  cell_vertices : int array;
  cell_edge_signs : float array;
  vertex_edges : int array;
  vertex_cells : int array;
  vertex_kite_areas : float array;
  vertex_edge_signs : float array;
  edge_cells : int array;
  edge_vertices : int array;
  eoe_offsets : int array;
  eoe_edges : int array;
  eoe_weights : float array;
}

type t = {
  geometry : geometry;
  n_cells : int;
  n_edges : int;
  n_vertices : int;
  max_edges : int;
  x_cell : Vec3.t array;
  x_edge : Vec3.t array;
  x_vertex : Vec3.t array;
  lon_cell : float array;
  lat_cell : float array;
  lon_edge : float array;
  lat_edge : float array;
  lon_vertex : float array;
  lat_vertex : float array;
  n_edges_on_cell : int array;
  edges_on_cell : int array array;
  cells_on_cell : int array array;
  vertices_on_cell : int array array;
  cells_on_edge : int array array;
  vertices_on_edge : int array array;
  edges_on_vertex : int array array;
  cells_on_vertex : int array array;
  n_edges_on_edge : int array;
  edges_on_edge : int array array;
  weights_on_edge : float array array;
  dc_edge : float array;
  dv_edge : float array;
  area_cell : float array;
  area_triangle : float array;
  kite_areas_on_vertex : float array array;
  edge_normal : Vec3.t array;
  edge_tangent : Vec3.t array;
  angle_edge : float array;
  edge_sign_on_cell : float array array;
  edge_sign_on_vertex : float array array;
  f_cell : float array;
  f_edge : float array;
  f_vertex : float array;
  boundary_edge : bool array;
  mutable csr_cache : csr option;
}

let domain_area t =
  match t.geometry with
  | Sphere r -> 4. *. Float.pi *. r *. r
  | Plane { lx; ly } -> lx *. ly

let mean_spacing t = Stats.mean t.dc_edge

let with_boundary_edges t pred =
  { t with boundary_edge = Array.init t.n_edges pred }

let with_coriolis t f =
  {
    t with
    f_cell = Array.map f t.x_cell;
    f_edge = Array.map f t.x_edge;
    f_vertex = Array.map f t.x_vertex;
  }

let fold_edges_on_cell t c f init =
  let acc = ref init in
  let edges = t.edges_on_cell.(c) in
  for j = 0 to t.n_edges_on_cell.(c) - 1 do
    acc := f !acc edges.(j)
  done;
  !acc

let edge_index_on_cell t ~c ~e =
  let edges = t.edges_on_cell.(c) in
  let n = t.n_edges_on_cell.(c) in
  let rec loop j =
    if j >= n then raise Not_found
    else if edges.(j) = e then j
    else loop (j + 1)
  in
  loop 0

(* --- packed CSR view --------------------------------------------------- *)

let flatten_offsets rows =
  let n = Array.length rows in
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + Array.length rows.(i)
  done;
  offsets

let flatten zero offsets rows =
  let data = Array.make offsets.(Array.length rows) zero in
  Array.iteri
    (fun i row -> Array.blit row 0 data offsets.(i) (Array.length row))
    rows;
  data

let build_csr t =
  let cell_offsets = flatten_offsets t.edges_on_cell in
  let eoe_offsets = flatten_offsets t.edges_on_edge in
  {
    cell_offsets;
    cell_edges = flatten 0 cell_offsets t.edges_on_cell;
    cell_neighbors = flatten 0 cell_offsets t.cells_on_cell;
    cell_vertices = flatten 0 cell_offsets t.vertices_on_cell;
    cell_edge_signs = flatten 0. cell_offsets t.edge_sign_on_cell;
    vertex_edges =
      flatten 0 (flatten_offsets t.edges_on_vertex) t.edges_on_vertex;
    vertex_cells =
      flatten 0 (flatten_offsets t.cells_on_vertex) t.cells_on_vertex;
    vertex_kite_areas =
      flatten 0.
        (flatten_offsets t.kite_areas_on_vertex)
        t.kite_areas_on_vertex;
    vertex_edge_signs =
      flatten 0.
        (flatten_offsets t.edge_sign_on_vertex)
        t.edge_sign_on_vertex;
    edge_cells = flatten 0 (flatten_offsets t.cells_on_edge) t.cells_on_edge;
    edge_vertices =
      flatten 0 (flatten_offsets t.vertices_on_edge) t.vertices_on_edge;
    eoe_offsets;
    eoe_edges = flatten 0 eoe_offsets t.edges_on_edge;
    eoe_weights = flatten 0. eoe_offsets t.weights_on_edge;
  }

(* The CSR tables are walked with [Array.unsafe_get] by the hot kernels
   of [Mpas_swe.Operators]; everything those fast paths rely on is
   checked here, once, when the view is built.  The errors are typed —
   named by the offending table — so the bounds auditor of
   Mpas_analysis can discharge each unsafe index against the specific
   invariants it needs. *)
module Csr = struct
  type error =
    | Offsets_shape of { table : string; detail : string }
    | Row_width of { table : string; row : int; got : int; expected : int }
    | Length_mismatch of { table : string; got : int; expected : int }
    | Out_of_range of { table : string; pos : int; got : int; bound : int }
    | Missing_back_link of { vertex : int; cell : int }

  let error_table = function
    | Offsets_shape { table; _ }
    | Row_width { table; _ }
    | Length_mismatch { table; _ }
    | Out_of_range { table; _ } ->
        Some table
    | Missing_back_link _ -> None

  let message = function
    | Offsets_shape { table; detail } ->
        Printf.sprintf "%s: %s" table detail
    | Row_width { table; row; got; expected } ->
        Printf.sprintf "%s: row %d has %d entries, expected %d" table row got
          expected
    | Length_mismatch { table; got; expected } ->
        Printf.sprintf "%s has %d entries, expected %d" table got expected
    | Out_of_range { table; pos; got; bound } ->
        Printf.sprintf "%s: entry %d is %d, out of [0, %d)" table pos got
          bound
    | Missing_back_link { vertex; cell } ->
        Printf.sprintf "vertex %d does not list cell %d back" vertex cell

  let validate t (c : csr) =
    let errors = ref [] in
    let add e = errors := e :: !errors in
    (* One offsets array serves several data tables; its shape is
       checked once, against the ragged row widths it must describe. *)
    let check_offsets table offsets widths =
      let n = Array.length widths in
      if Array.length offsets <> n + 1 then
        add
          (Offsets_shape
             {
               table;
               detail =
                 Printf.sprintf "%d offsets for %d rows" (Array.length offsets)
                   n;
             })
      else begin
        if offsets.(0) <> 0 then
          add (Offsets_shape { table; detail = "offsets do not start at 0" });
        for i = 0 to n - 1 do
          if offsets.(i + 1) < offsets.(i) then
            add
              (Offsets_shape
                 {
                   table;
                   detail = Printf.sprintf "offsets not monotone at row %d" i;
                 })
          else if offsets.(i + 1) - offsets.(i) <> widths.(i) then
            add
              (Row_width
                 {
                   table;
                   row = i;
                   got = offsets.(i + 1) - offsets.(i);
                   expected = widths.(i);
                 })
        done
      end
    in
    (* A flat data table must end exactly where its offsets say. *)
    let check_flat table data offsets =
      let n = Array.length offsets in
      if n > 0 && offsets.(0) = 0 && offsets.(n - 1) <> Array.length data then
        add
          (Length_mismatch
             { table; got = Array.length data; expected = offsets.(n - 1) })
    in
    let check_rows table rows widths =
      Array.iteri
        (fun i row ->
          let expected = widths i in
          if Array.length row <> expected then
            add (Row_width { table; row = i; got = Array.length row; expected }))
        rows
    in
    let check_range table data bound =
      Array.iteri
        (fun i x ->
          if x < 0 || x >= bound then
            add (Out_of_range { table; pos = i; got = x; bound }))
        data
    in
    let check_len table a n =
      if Array.length a <> n then
        add (Length_mismatch { table; got = Array.length a; expected = n })
    in
    check_offsets "cell_offsets" c.cell_offsets t.n_edges_on_cell;
    check_offsets "eoe_offsets" c.eoe_offsets t.n_edges_on_edge;
    check_flat "cell_edges" c.cell_edges c.cell_offsets;
    check_flat "cell_neighbors" c.cell_neighbors c.cell_offsets;
    check_flat "cell_vertices" c.cell_vertices c.cell_offsets;
    check_flat "cell_edge_signs" c.cell_edge_signs c.cell_offsets;
    check_flat "eoe_edges" c.eoe_edges c.eoe_offsets;
    check_flat "eoe_weights" c.eoe_weights c.eoe_offsets;
    (* Ragged mesh tables the CSR view was flattened from. *)
    check_rows "edges_on_cell" t.edges_on_cell (fun i -> t.n_edges_on_cell.(i));
    check_rows "cells_on_cell" t.cells_on_cell (fun i -> t.n_edges_on_cell.(i));
    check_rows "vertices_on_cell" t.vertices_on_cell (fun i ->
        t.n_edges_on_cell.(i));
    check_rows "edge_sign_on_cell" t.edge_sign_on_cell (fun i ->
        t.n_edges_on_cell.(i));
    check_rows "edges_on_edge" t.edges_on_edge (fun i -> t.n_edges_on_edge.(i));
    check_rows "weights_on_edge" t.weights_on_edge (fun i ->
        t.n_edges_on_edge.(i));
    check_rows "edges_on_vertex" t.edges_on_vertex (fun _ -> 3);
    check_rows "cells_on_vertex" t.cells_on_vertex (fun _ -> 3);
    check_rows "kite_areas_on_vertex" t.kite_areas_on_vertex (fun _ -> 3);
    check_rows "edge_sign_on_vertex" t.edge_sign_on_vertex (fun _ -> 3);
    check_rows "cells_on_edge" t.cells_on_edge (fun _ -> 2);
    check_rows "vertices_on_edge" t.vertices_on_edge (fun _ -> 2);
    check_len "vertex_edges" c.vertex_edges (3 * t.n_vertices);
    check_len "vertex_cells" c.vertex_cells (3 * t.n_vertices);
    check_len "vertex_kite_areas" c.vertex_kite_areas (3 * t.n_vertices);
    check_len "vertex_edge_signs" c.vertex_edge_signs (3 * t.n_vertices);
    check_len "edge_cells" c.edge_cells (2 * t.n_edges);
    check_len "edge_vertices" c.edge_vertices (2 * t.n_edges);
    check_range "cell_edges" c.cell_edges t.n_edges;
    check_range "cell_neighbors" c.cell_neighbors t.n_cells;
    check_range "cell_vertices" c.cell_vertices t.n_vertices;
    check_range "vertex_edges" c.vertex_edges t.n_edges;
    check_range "vertex_cells" c.vertex_cells t.n_cells;
    check_range "edge_cells" c.edge_cells t.n_cells;
    check_range "edge_vertices" c.edge_vertices t.n_vertices;
    check_range "eoe_edges" c.eoe_edges t.n_edges;
    (* Geometry arrays dereferenced through CSR indices. *)
    check_len "dc_edge" t.dc_edge t.n_edges;
    check_len "dv_edge" t.dv_edge t.n_edges;
    check_len "area_cell" t.area_cell t.n_cells;
    check_len "area_triangle" t.area_triangle t.n_vertices;
    (* Reverse link used by the pv_cell kite lookup: every vertex of a
       cell must list that cell among its three. *)
    if !errors = [] then
      for cl = 0 to t.n_cells - 1 do
        for j = c.cell_offsets.(cl) to c.cell_offsets.(cl + 1) - 1 do
          let v = c.cell_vertices.(j) in
          let b = 3 * v in
          if
            c.vertex_cells.(b) <> cl
            && c.vertex_cells.(b + 1) <> cl
            && c.vertex_cells.(b + 2) <> cl
          then add (Missing_back_link { vertex = v; cell = cl })
        done
      done;
    List.rev !errors
end

let csr_errors t (c : csr) = List.map Csr.message (Csr.validate t c)

let csr t =
  match t.csr_cache with
  | Some c -> c
  | None ->
      let c = build_csr t in
      (match csr_errors t c with
      | [] -> ()
      | errs ->
          invalid_arg ("Mesh.csr: invalid mesh: " ^ String.concat "; " errs));
      t.csr_cache <- Some c;
      c

(* --- invariant checking ------------------------------------------------ *)

let check_euler t errors =
  (* A closed surface of genus 0 has V - E + F = 2; a torus (periodic
     plane) has characteristic 0.  Cells are faces of the primal mesh,
     mesh vertices are primal triangulation faces, so in dual terms:
     n_cells - n_edges + n_vertices = characteristic. *)
  let expected = match t.geometry with Sphere _ -> 2 | Plane _ -> 0 in
  let chi = t.n_cells - t.n_edges + t.n_vertices in
  if chi <> expected then
    Format.sprintf "Euler characteristic %d, expected %d" chi expected
    :: errors
  else errors

let check_edge_cell_symmetry t errors =
  let bad = ref 0 in
  for e = 0 to t.n_edges - 1 do
    Array.iter
      (fun c ->
        match edge_index_on_cell t ~c ~e with
        | _ -> ()
        | exception Not_found -> incr bad)
      t.cells_on_edge.(e)
  done;
  if !bad > 0 then
    Format.sprintf "%d edge->cell links missing the reverse link" !bad
    :: errors
  else errors

let check_edge_signs t errors =
  let bad = ref 0 in
  for c = 0 to t.n_cells - 1 do
    for j = 0 to t.n_edges_on_cell.(c) - 1 do
      let e = t.edges_on_cell.(c).(j) in
      let s = t.edge_sign_on_cell.(c).(j) in
      let expected = if t.cells_on_edge.(e).(0) = c then 1. else -1. in
      if s <> expected then incr bad
    done
  done;
  if !bad > 0 then
    Format.sprintf "%d inconsistent edge_sign_on_cell entries" !bad :: errors
  else errors

let check_vertex_signs t errors =
  let bad = ref 0 in
  for v = 0 to t.n_vertices - 1 do
    for k = 0 to 2 do
      let e = t.edges_on_vertex.(v).(k) in
      let c_from = t.cells_on_vertex.(v).(k) in
      let c_to = t.cells_on_vertex.(v).((k + 1) mod 3) in
      let ce = t.cells_on_edge.(e) in
      let s = t.edge_sign_on_vertex.(v).(k) in
      let ok =
        (ce.(0) = c_from && ce.(1) = c_to && s = 1.)
        || (ce.(0) = c_to && ce.(1) = c_from && s = -1.)
      in
      if not ok then incr bad
    done
  done;
  if !bad > 0 then
    Format.sprintf "%d inconsistent edge_sign_on_vertex entries" !bad :: errors
  else errors

let check_area_partition ~area_tol t errors =
  let errors =
    let total = Array.fold_left ( +. ) 0. t.area_cell in
    let expect = domain_area t in
    if Stats.rel_diff total expect > area_tol then
      Format.sprintf "cell areas sum to %g, domain area is %g" total expect
      :: errors
    else errors
  in
  let errors =
    let total = Array.fold_left ( +. ) 0. t.area_triangle in
    let expect = domain_area t in
    if Stats.rel_diff total expect > area_tol then
      Format.sprintf "triangle areas sum to %g, domain area is %g" total expect
      :: errors
    else errors
  in
  (* Kites partition each triangle. *)
  let bad = ref 0 in
  for v = 0 to t.n_vertices - 1 do
    let s = Array.fold_left ( +. ) 0. t.kite_areas_on_vertex.(v) in
    if Stats.rel_diff s t.area_triangle.(v) > area_tol then incr bad
  done;
  let errors =
    if !bad > 0 then
      Format.sprintf "%d vertices whose kites do not sum to the triangle area"
        !bad
      :: errors
    else errors
  in
  (* Kites also partition each cell. *)
  let per_cell = Array.make t.n_cells 0. in
  for v = 0 to t.n_vertices - 1 do
    for k = 0 to 2 do
      let c = t.cells_on_vertex.(v).(k) in
      per_cell.(c) <- per_cell.(c) +. t.kite_areas_on_vertex.(v).(k)
    done
  done;
  let bad = ref 0 in
  for c = 0 to t.n_cells - 1 do
    if Stats.rel_diff per_cell.(c) t.area_cell.(c) > area_tol then incr bad
  done;
  if !bad > 0 then
    Format.sprintf "%d cells whose kites do not sum to the cell area" !bad
    :: errors
  else errors

let check_vertex_on_cell_ordering t errors =
  (* vertices_on_cell.(c).(j) must be a vertex of both edge j and
     edge j+1. *)
  let bad = ref 0 in
  for c = 0 to t.n_cells - 1 do
    let n = t.n_edges_on_cell.(c) in
    for j = 0 to n - 1 do
      let v = t.vertices_on_cell.(c).(j) in
      let has e =
        let ve = t.vertices_on_edge.(e) in
        ve.(0) = v || ve.(1) = v
      in
      if
        not
          (has t.edges_on_cell.(c).(j)
          && has t.edges_on_cell.(c).((j + 1) mod n))
      then incr bad
    done
  done;
  if !bad > 0 then
    Format.sprintf "%d vertices_on_cell entries out of order" !bad :: errors
  else errors

let check ?(area_tol = 1e-9) t =
  []
  |> check_euler t
  |> check_edge_cell_symmetry t
  |> check_edge_signs t
  |> check_vertex_signs t
  |> check_area_partition ~area_tol t
  |> check_vertex_on_cell_ordering t
  |> List.rev
