open Mpas_numerics

(* Lattice layout (see the .mli).  Ids:
   - cell (i,j)        -> j*nx + i
   - edge (i,j,d)      -> 3*cell + d, d in {0: to (i+1,j); 1: to (i,j+1);
                          2: to (i-1,j+1)}
   - vertex (i,j,s)    -> 2*cell + s, s in {0: triangle
                          [(i,j);(i+1,j);(i,j+1)]; 1: triangle
                          [(i+1,j);(i+1,j+1);(i,j+1)]} *)

let create ?(f = 0.) ~nx ~ny ~dc () =
  if nx < 3 || ny < 3 then invalid_arg "Planar_hex.create: need nx, ny >= 3";
  if dc <= 0. then invalid_arg "Planar_hex.create: dc must be positive";
  let n_cells = nx * ny in
  let n_edges = 3 * n_cells in
  let n_vertices = 2 * n_cells in
  let a1 = Vec3.make dc 0. 0. in
  let a2 = Vec3.make (dc /. 2.) (dc *. sqrt 3. /. 2.) 0. in
  let wrap i n = ((i mod n) + n) mod n in
  let cell i j = (wrap j ny * nx) + wrap i nx in
  let edge i j d = (3 * cell i j) + d in
  let vertex i j s = (2 * cell i j) + s in
  let pos i j = Vec3.add (Vec3.scale (float_of_int i) a1) (Vec3.scale (float_of_int j) a2) in

  let x_cell = Array.make n_cells Vec3.zero in
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      x_cell.(cell i j) <- pos i j
    done
  done;

  (* Unwrapped positions: anchor every edge/vertex at its (i,j) cell. *)
  let x_edge = Array.make n_edges Vec3.zero in
  let x_vertex = Array.make n_vertices Vec3.zero in
  let cells_on_edge = Array.make n_edges [||] in
  let vertices_on_edge = Array.make n_edges [||] in
  let edge_normal = Array.make n_edges Vec3.zero in
  let edge_tangent = Array.make n_edges Vec3.zero in
  let cells_on_vertex = Array.make n_vertices [||] in
  let edges_on_vertex = Array.make n_vertices [||] in
  let edge_sign_on_vertex = Array.make n_vertices [||] in

  (* Normal directions of the three edge families. *)
  let dir12 = Vec3.sub a2 a1 in
  let normals =
    [| Vec3.normalize a1; Vec3.normalize a2; Vec3.normalize dir12 |]
  in
  let offsets = [| a1; a2; dir12 |] in

  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      let p = pos i j in
      (* Edges owned by (i,j). *)
      let neighbours = [| cell (i + 1) j; cell i (j + 1); cell (i - 1) (j + 1) |] in
      for d = 0 to 2 do
        let e = edge i j d in
        cells_on_edge.(e) <- [| cell i j; neighbours.(d) |];
        x_edge.(e) <- Vec3.add p (Vec3.scale 0.5 offsets.(d));
        edge_normal.(e) <- normals.(d);
        edge_tangent.(e) <- Vec3.cross Vec3.ez normals.(d)
      done;
      (* Vertices owned by (i,j): circumcenters of the two lattice
         triangles of the (i,j) parallelogram. *)
      let c13 = Vec3.scale (1. /. 3.) (Vec3.add a1 a2) in
      x_vertex.(vertex i j 0) <- Vec3.add p c13;
      x_vertex.(vertex i j 1) <- Vec3.add p (Vec3.scale 2. c13);
      cells_on_vertex.(vertex i j 0) <- [| cell i j; cell (i + 1) j; cell i (j + 1) |];
      cells_on_vertex.(vertex i j 1) <-
        [| cell (i + 1) j; cell (i + 1) (j + 1); cell i (j + 1) |];
      (* edges_on_vertex.(v).(k) joins cells k and k+1 (mod 3). *)
      edges_on_vertex.(vertex i j 0) <-
        [| edge i j 0; edge (i + 1) j 2; edge i j 1 |];
      edge_sign_on_vertex.(vertex i j 0) <- [| 1.; 1.; -1. |];
      edges_on_vertex.(vertex i j 1) <-
        [| edge (i + 1) j 1; edge i (j + 1) 0; edge (i + 1) j 2 |];
      edge_sign_on_vertex.(vertex i j 1) <- [| 1.; -1.; -1. |]
    done
  done;

  (* vertices_on_edge ordered along the tangent (k x n). *)
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      (* d = 0: tangent +y; below = s1 of (i,j-1), above = s0 of (i,j). *)
      vertices_on_edge.(edge i j 0) <- [| vertex i (j - 1) 1; vertex i j 0 |];
      (* d = 1: tangent at 150 deg; from s0 of (i,j) to s1 of (i-1,j). *)
      vertices_on_edge.(edge i j 1) <- [| vertex i j 0; vertex (i - 1) j 1 |];
      (* d = 2: tangent at 210 deg; from s1 of (i-1,j) to s0 of (i-1,j). *)
      vertices_on_edge.(edge i j 2) <- [| vertex (i - 1) j 1; vertex (i - 1) j 0 |]
    done
  done;

  (* Cell-local counter-clockwise orderings, starting from the +x edge. *)
  let edges_on_cell = Array.make n_cells [||] in
  let cells_on_cell = Array.make n_cells [||] in
  let vertices_on_cell = Array.make n_cells [||] in
  let edge_sign_on_cell = Array.make n_cells [||] in
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      let c = cell i j in
      edges_on_cell.(c) <-
        [| edge i j 0; edge i j 1; edge i j 2;
           edge (i - 1) j 0; edge i (j - 1) 1; edge (i + 1) (j - 1) 2 |];
      cells_on_cell.(c) <-
        [| cell (i + 1) j; cell i (j + 1); cell (i - 1) (j + 1);
           cell (i - 1) j; cell i (j - 1); cell (i + 1) (j - 1) |];
      vertices_on_cell.(c) <-
        [| vertex i j 0; vertex (i - 1) j 1; vertex (i - 1) j 0;
           vertex (i - 1) (j - 1) 1; vertex i (j - 1) 0; vertex i (j - 1) 1 |];
      edge_sign_on_cell.(c) <- [| 1.; 1.; 1.; -1.; -1.; -1. |]
    done
  done;

  let dv = dc /. sqrt 3. in
  let hex_area = sqrt 3. /. 2. *. dc *. dc in
  let tri_area = sqrt 3. /. 4. *. dc *. dc in
  let dc_edge = Array.make n_edges dc in
  let dv_edge = Array.make n_edges dv in
  let area_cell = Array.make n_cells hex_area in
  let area_triangle = Array.make n_vertices tri_area in
  let kite_areas_on_vertex =
    Array.init n_vertices (fun _ -> Array.make 3 (tri_area /. 3.))
  in

  let edges_on_edge, weights_on_edge =
    Trisk.weights
      {
        Trisk.n_edges;
        cells_on_edge;
        n_edges_on_cell = Array.make n_cells 6;
        edges_on_cell;
        vertices_on_cell;
        cells_on_vertex;
        kite_areas_on_vertex;
        area_cell;
        dc_edge;
        dv_edge;
        edge_sign_on_cell;
      }
  in

  let angle_of v = atan2 v.Vec3.y v.Vec3.x in
  let m = {
    Mesh.geometry =
      Mesh.Plane
        { lx = float_of_int nx *. dc; ly = float_of_int ny *. dc *. sqrt 3. /. 2. };
    n_cells;
    n_edges;
    n_vertices;
    max_edges = 6;
    x_cell;
    x_edge;
    x_vertex;
    (* On the plane "longitude/latitude" are just the coordinates. *)
    lon_cell = Array.map (fun p -> p.Vec3.x) x_cell;
    lat_cell = Array.map (fun p -> p.Vec3.y) x_cell;
    lon_edge = Array.map (fun p -> p.Vec3.x) x_edge;
    lat_edge = Array.map (fun p -> p.Vec3.y) x_edge;
    lon_vertex = Array.map (fun p -> p.Vec3.x) x_vertex;
    lat_vertex = Array.map (fun p -> p.Vec3.y) x_vertex;
    n_edges_on_cell = Array.make n_cells 6;
    edges_on_cell;
    cells_on_cell;
    vertices_on_cell;
    cells_on_edge;
    vertices_on_edge;
    edges_on_vertex;
    cells_on_vertex;
    n_edges_on_edge = Array.map Array.length edges_on_edge;
    edges_on_edge;
    weights_on_edge;
    dc_edge;
    dv_edge;
    area_cell;
    area_triangle;
    kite_areas_on_vertex;
    edge_normal;
    edge_tangent;
    angle_edge = Array.map angle_of edge_normal;
    edge_sign_on_cell;
    edge_sign_on_vertex;
    f_cell = Array.make n_cells f;
    f_edge = Array.make n_edges f;
    f_vertex = Array.make n_vertices f;
    boundary_edge = Array.make n_edges false;
    csr_cache = None;
  }
  in
  ignore (Mesh.csr m : Mesh.csr);
  m
